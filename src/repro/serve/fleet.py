"""Sharded serving fleet: consistent-hash routing over simulated hosts.

One :class:`~repro.serve.server.PredictionServer` scales to the cores of
one host; the paper's claim is a *fleet*.  This module spreads the model
registry and the request load across N server shards — each with its own
worker pool, compute executor, result cache and spill directory — the
way DNN-MG/GMT partition multigrid work across compute units:

* **Routing** — a consistent-hash ring (:class:`~repro.serve.hashring.
  HashRing`) over ``(model name, content version)`` assigns every model
  an R-way replica set.  Reads go to the primary and fail over along
  the replica order; writes (``register_model``/``load``/``unregister``/
  ``prune_spill``) fan out to every replica.
* **Failover** — a shard that raises, hangs past ``shard_timeout_s`` or
  is killed is *ejected* (marked unhealthy) and its in-flight request is
  re-dispatched to the next replica; the caller sees the replica's
  answer, not the fault.  Requests are conserved: every submit ends as
  exactly one of served / rejected / expired / errors / cancelled /
  unavailable / throttled (``FleetStats.lost == 0`` is the invariant
  the fault-injection suite enforces).
* **Recovery** — ``check_health()`` probes ejected shards with a real
  tiny prediction and re-admits the ones that answer, after an optional
  ``probe_after_s`` cool-down.  Routing also self-heals: when a key's
  whole replica set is ejected, dispatch makes one last pass ignoring
  health marks (non-blocking — safe from worker callbacks and event
  loops), and a shard that serves the answer is re-admitted on the
  spot, so a burst of false hang ejections cannot black-hole a key.
* **Control seams** — ``self.balancer`` (when installed) reorders each
  read's replica set by live queue depth (power-of-two-choices) and
  ``self.admission`` rations submits per tenant (token buckets →
  ``TenantThrottled``); membership is elastic (``add_shard`` /
  ``retire_shard`` / ``decommission_shard`` rebuild the ring with
  minimal key movement, re-registering models reconcile-before-swap).
  The :mod:`repro.serve.control` plane drives all of these.
* **Resilience seams** — ``self.retry`` / ``self.hedge`` /
  ``self.breaker`` (installed by :func:`~repro.serve.resilience.
  install_resilience`) add call-level healing: ``predict`` re-submits
  transient verdicts under a token-bucket retry budget (each retry is
  a fresh, individually conserved submit, counted ``retried``); slow
  reads race a backup request on a different replica after a
  quantile-tracked delay (first answer wins via the delivered-guard,
  losers are cancelled — ``hedges`` / ``hedged_wins`` /
  ``hedge_cancels``); open circuits per (model, shard) push a replica
  to the back of the dispatch order without ever dropping it
  (``breaker_open``).  ``FleetStats.lost == 0`` holds with all three
  switched on.
* **Cost model** — every routing hop (ω out, full field back) is charged
  to a :class:`~repro.distributed.comm.SimulatedCommunicator`, so the
  fig10-style scaling story extends to serving:
  ``benchmarks/bench_fleet_scaling.py`` reports measured QPS next to the
  virtual interconnect seconds of the simulated fleet.

Error discipline at the routing layer: *request* errors (bad ω arity,
``DeadlineExceeded``, ``ServerOverloaded``, ``RegistryError``) belong to
the caller and propagate without ejecting anyone; every other exception
is a *shard fault* and triggers ejection + failover.

Quickstart::

    fleet = ShardedFleet(FleetConfig(shards=4, replicas=2))
    fleet.register_model("m", model, problem)
    with fleet:
        u = fleet.predict("m", omega)          # routed + failover
    fleet.stats.lost                           # 0 — conservation law
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError, Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable

import numpy as np

from ..distributed.comm import SimulatedCommunicator
from .errors import (
    DeadlineExceeded, FleetUnavailable, ServeError, ServerOverloaded,
    TenantThrottled,
)
from .hashring import HashRing
from .registry import ModelEntry, ModelRegistry, RegistryError, state_version
from .resilience import HedgeTimer
from .server import PredictionServer, ServerConfig, StreamStalled
from .telemetry import MirroredCounters

__all__ = ["FleetConfig", "FleetStats", "Shard", "ShardedFleet"]

_LAT_WINDOW = 10_000

# FleetStats fields re-exported as ``stats.fleet.*`` metric views when
# telemetry is enabled.  Views *read* the live stats snapshot, so the
# numbers stay bitwise-identical to ``fleet.stats`` itself.
_FLEET_VIEW_FIELDS = (
    "shards", "healthy_shards", "submitted", "served", "rejected",
    "expired", "errors", "cancelled", "unavailable", "throttled",
    "failovers", "shard_faults", "hangs", "probes", "readmissions",
    "spreads", "scale_ups", "scale_downs", "decommissions",
    "reregistrations", "retried", "hedges", "hedged_wins",
    "hedge_cancels", "breaker_open", "streams",
    "stream_tiles_delivered", "stream_resumed", "requests",
    "cache_hits", "dedup_hits", "batches", "batched_requests",
    "tiled_forwards", "lost", "p50", "p99")


@dataclass(frozen=True)
class FleetConfig:
    """Tunables of one :class:`ShardedFleet`."""

    shards: int = 2                   # simulated hosts
    replicas: int = 2                 # R-way replication (capped at shards)
    vnodes: int = 64                  # ring points per shard
    # Hang budget, measured from dispatch to answer — the shard's queue
    # wait counts, so set it above the worst-case backlog + compute time
    # or a merely busy shard will be ejected as hung.  False ejections
    # self-heal: when a key's whole replica set is down, routing makes
    # one last pass ignoring health marks, and a shard that answers is
    # re-admitted on the spot.  None disables hang detection.
    shard_timeout_s: float | None = None
    probe_after_s: float = 0.0        # cool-down before a probe retries
    server: ServerConfig = field(default_factory=ServerConfig)
    # (message_bytes, world_size) -> seconds; None counts bytes only.
    time_model: Callable[[int, int], float] | None = None
    # True: all shards spill into ONE directory under one byte budget,
    # coordinated by the cross-process spill ledger (entries deduplicate
    # across replicas).  False: each shard owns a private subdirectory
    # with an independent budget.
    shared_spill: bool = False


class Shard:
    """One simulated host: a server plus its health record."""

    def __init__(self, shard_id: str, server: PredictionServer) -> None:
        self.id = shard_id
        self.server = server
        self.healthy = True
        self.ejected_at: float | None = None  # monotonic eject stamp
        self.fault_count = 0
        self.last_error: BaseException | None = None

    @property
    def queue_depth(self) -> int:
        """Live load gauge (pending + in-flight) of this shard's server
        — the signal p2c read spreading and the autoscaler key on."""
        return self.server.queue_depth()

    def __repr__(self) -> str:
        state = "healthy" if self.healthy else "ejected"
        return f"Shard({self.id!r}, {state}, faults={self.fault_count})"


@dataclass
class FleetStats:
    """Merged fleet counters + summed per-shard serving statistics."""

    shards: int = 0
    healthy_shards: int = 0
    # Fleet-level request accounting (the conservation law's terms).
    submitted: int = 0
    served: int = 0
    rejected: int = 0          # backpressure (ServerOverloaded)
    expired: int = 0           # deadlines (DeadlineExceeded)
    errors: int = 0            # request-level errors (bad ω, registry)
    cancelled: int = 0         # caller cancelled the fleet future
    unavailable: int = 0       # every replica down (FleetUnavailable)
    throttled: int = 0         # per-tenant admission (TenantThrottled)
    # Fault machinery.
    failovers: int = 0         # re-dispatches after a shard fault
    shard_faults: int = 0      # ejections (errors + hangs + kills)
    hangs: int = 0             # ejections specifically for timeouts
    probes: int = 0
    readmissions: int = 0
    # Control-plane machinery (load spreading + elasticity).
    spreads: int = 0           # p2c reads diverted off the primary
    scale_ups: int = 0         # shards spawned (add_shard)
    scale_downs: int = 0       # shards drained + retired (retire_shard)
    decommissions: int = 0     # permanently lost shards removed
    reregistrations: int = 0   # (key, shard) re-registrations on moves
    # Resilience machinery (retry budgets, hedged reads, breakers).
    # A retry is a *fresh* submit — individually conserved — so none of
    # these are terms of the conservation law: ``hedged_wins`` is a
    # subset of ``served``, ``breaker_open`` reorders rather than drops.
    retried: int = 0           # policy-driven re-submits performed
    hedges: int = 0            # backup requests issued
    hedged_wins: int = 0       # served answers that came from a backup
    hedge_cancels: int = 0     # losing attempts shed after delivery
    breaker_open: int = 0      # replicas deprioritized by open circuits
    # Streaming reads.  A stream is one submit and ends in exactly one
    # conservation-law term like any other request; these count its
    # progress: tile records handed to the consumer (each delivered at
    # most once, across failovers) and mid-stream resumes on a
    # replacement replica.
    streams: int = 0           # streaming submits accepted
    stream_tiles_delivered: int = 0
    stream_resumed: int = 0    # mid-stream failovers that resumed
    # Summed per-shard ServerStats counters.
    requests: int = 0
    cache_hits: int = 0
    dedup_hits: int = 0
    batches: int = 0
    batched_requests: int = 0
    tiled_forwards: int = 0
    # Simulated interconnect (routing hops through the comm layer).
    send_calls: int = 0
    send_bytes: int = 0
    virtual_comm_seconds: float = 0.0
    latencies: list = field(default_factory=list)
    per_shard: dict = field(default_factory=dict)

    @property
    def lost(self) -> int:
        """Requests unaccounted for — zero is the conservation law."""
        return self.submitted - (self.served + self.rejected + self.expired
                                 + self.errors + self.cancelled
                                 + self.unavailable + self.throttled)

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)


class _RouteState:
    """Mutable routing record of one fleet request (guarded by the
    fleet lock where it races with dispatch/failover)."""

    __slots__ = ("model_name", "omega", "resolution", "priority",
                 "deadline_s", "tenant", "replicas", "next_idx", "current",
                 "submitted_at", "attempt_started", "delivered",
                 "health_retried", "ignore_health", "hedged", "inners",
                 "trace")

    def __init__(self, model_name: str, omega: np.ndarray,
                 resolution: int | None, priority: int | None,
                 deadline_s: float | None, replicas: list[Shard],
                 tenant: str | None = None) -> None:
        self.model_name = model_name
        self.omega = omega
        self.resolution = resolution
        self.priority = priority
        self.deadline_s = deadline_s
        self.tenant = tenant
        self.replicas = replicas
        self.next_idx = 0
        self.current: Shard | None = None
        self.submitted_at = time.monotonic()   # latency anchor (fixed)
        self.attempt_started = self.submitted_at  # hang detection (reset
        self.delivered = False                    # on every re-dispatch)
        self.health_retried = False   # one last-resort pass used
        self.ignore_health = False    # last-resort pass: try ejected too
        self.hedged = False           # a backup dispatch was attempted
        self.inners: list[Future] = []   # attempts issued (for shedding)
        self.trace = None             # root span token (telemetry on)


class _FleetFuture(Future):
    """A Future that remembers its routing state (hang failover needs
    to know which shard currently owns the attempt)."""

    def __init__(self, state: _RouteState) -> None:
        super().__init__()
        self.state = state


class ShardedFleet:
    """Consistent-hash-routed front-end over N server shards.

    API-compatible with :class:`PredictionServer` where it matters —
    ``submit`` / ``predict`` / ``predict_many`` / ``start`` / ``stop`` /
    ``close`` / context manager — so the asyncio facade
    (:class:`~repro.serve.aio.AsyncPredictionServer`) and the CLI client
    loop work unchanged on a fleet.
    """

    def __init__(self, config: FleetConfig | None = None) -> None:
        self.config = config or FleetConfig()
        if self.config.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.config.replicas < 1:
            raise ValueError("replicas must be >= 1")
        # Control-plane seams: a balancer reorders a key's replica set
        # per read (power-of-two-choices on queue depth); an admission
        # controller rations submits per tenant.  None = PR-5 behavior.
        self.balancer = None
        self.admission = None
        # Resilience seams: a retry policy re-submits transient verdicts
        # under a token-bucket budget; a hedge policy races slow reads
        # against a backup replica; a circuit breaker deprioritizes
        # (model, shard) pairs that keep faulting.  None = PR-7 behavior.
        self.retry = None
        self.hedge = None
        self.breaker = None
        self._hedge_timer: HedgeTimer | None = None
        # Telemetry seam: ``enable_telemetry`` threads one tracer +
        # metrics registry through every shard.  None = telemetry off —
        # the hot paths pay one attribute load and an ``is not None``.
        self.telemetry = None
        self.shards: list[Shard] = []
        self._by_id: dict[str, Shard] = {}
        self._retired: list[Shard] = []   # drained / decommissioned
        self._next_shard = 0              # monotone id source: shard ids
        #                                   never recycle across scaling
        self._lock = threading.RLock()
        for _ in range(self.config.shards):
            shard = self._make_shard()
            self.shards.append(shard)
            self._by_id[shard.id] = shard
        self._ring = HashRing([s.id for s in self.shards],
                              vnodes=self.config.vnodes)
        self._comm = SimulatedCommunicator(
            self.config.shards, time_model=self.config.time_model)
        self._catalog: dict[str, str] = {}      # model name -> version
        self._latencies: list[float] = []
        self._probe_seq = 0
        self._c = {k: 0 for k in (
            "submitted", "served", "rejected", "expired", "errors",
            "cancelled", "unavailable", "throttled", "failovers",
            "shard_faults", "hangs", "probes", "readmissions", "spreads",
            "scale_ups", "scale_downs", "decommissions",
            "reregistrations", "retried", "hedges", "hedged_wins",
            "hedge_cancels", "breaker_open", "streams",
            "stream_tiles_delivered", "stream_resumed")}

    @property
    def _r(self) -> int:
        """Live replication degree: the configured R capped by the
        *current* shard count (membership is dynamic now)."""
        return min(self.config.replicas, max(1, len(self.shards)))

    def _make_shard(self) -> Shard:
        """Build one shard (server + health record) under a fresh id."""
        with self._lock:
            shard_id = f"shard-{self._next_shard:02d}"
            self._next_shard += 1
        cfg = self.config.server
        if cfg.cache_dir is not None:
            if self.config.shared_spill:
                # One directory, one budget: every shard spills into
                # the same tier, coordinated by the spill ledger.
                # Replicas of one model share a single npz on disk.
                cfg = replace(cfg, shared_spill=True)
            else:
                # Each simulated host owns its spill directory:
                # budgets and LRU accounting are per-instance.
                cfg = replace(cfg, cache_dir=str(Path(cfg.cache_dir)
                                                 / shard_id))
        shard = Shard(shard_id, PredictionServer(ModelRegistry(), cfg))
        tel = self.telemetry
        if tel is not None:
            # Shards born after enable_telemetry (autoscaler spawns)
            # join the same bundle.  Per-shard stats views would collide
            # across shards; the merged fleet views cover them.
            shard.server.enable_telemetry(tel, register_views=False)
        return shard

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ShardedFleet":
        """Start every shard's worker fleet (idempotent).

        All compute executors are warmed *before* any worker thread
        exists anywhere: a fork-based pool on shard k must not fork a
        process already running shard j's compute threads.
        """
        for shard in self.shards:
            shard.server.executor.warm()
        for shard in self.shards:
            shard.server.start()
        return self

    def stop(self, drain: bool = True) -> None:
        for shard in self.shards:
            shard.server.stop(drain=drain)

    def close(self) -> None:
        with self._lock:
            timer, self._hedge_timer = self._hedge_timer, None
        if timer is not None:
            timer.close()
        for shard in self.shards:
            shard.server.close()

    def __enter__(self) -> "ShardedFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def running(self) -> bool:
        return any(shard.server.running for shard in self.shards)

    def enable_telemetry(self, telemetry,
                         register_views: bool = True) -> None:
        """Thread one telemetry bundle through the whole fleet.

        Installs the tracer + metrics seam on this fleet and on every
        shard server, present and future (``_make_shard`` wires shards
        born later).  The fleet counter dict is swapped for a mirrored
        one, so every increment also lands in an independent
        ``fleet.*`` registry counter — the second accounting path the
        conservation cross-check audits against ``FleetStats``.  With
        ``register_views`` (default) the merged :class:`FleetStats`
        fields are additionally re-registered as read-time
        ``stats.fleet.*`` views; views read the live snapshot, never
        shadow it, so today's numbers stay bitwise-identical.
        Idempotent for a given bundle.
        """
        with self._lock:
            self.telemetry = telemetry
            if not isinstance(self._c, MirroredCounters):
                self._c = MirroredCounters(self._c, telemetry.metrics,
                                           prefix="fleet.")
            shards = list(self.shards)
        for shard in shards:
            shard.server.enable_telemetry(telemetry, register_views=False)
        if not register_views:
            return
        reg = telemetry.metrics
        for name in _FLEET_VIEW_FIELDS:
            reg.register_view(f"stats.fleet.{name}",
                              lambda n=name: getattr(self.stats, n))
        # Resilience seams may be installed before or after this call;
        # the views read the live seams either way.
        from .resilience import _register_resilience_views
        _register_resilience_views(self, reg)

    # ------------------------------------------------------------------ #
    # Registry writes: fan out to every replica of the routing key
    # ------------------------------------------------------------------ #
    def register_model(self, name: str, model, problem, path=None,
                       meta: dict | None = None) -> ModelEntry:
        """Register an in-memory model on its R replica shards."""
        version = state_version(model)
        with self._lock:
            replica_ids = self._ring.lookup((name, version), n=self._r)
            replicas = [self._by_id[sid] for sid in replica_ids]
        entry: ModelEntry | None = None
        for shard in replicas:
            # Pass the routing hash through: hashing the state dict once
            # here and once per replica would cost R+1 full-model hashes
            # per registration for an identical-by-construction result.
            entry = shard.server.registry.register_model(
                name, model, problem, path=path, meta=meta, version=version)
        with self._lock:
            old = self._catalog.get(name)
            self._catalog[name] = version
            if old is not None and old != version:
                # A retrained model routes to a (possibly) different
                # replica set; shards serving only the old version stop.
                stale = (set(self._ring.lookup((name, old), n=self._r))
                         - set(replica_ids))
                stale_shards = [self._by_id[sid] for sid in stale
                                if sid in self._by_id]
            else:
                stale_shards = []
        for shard in stale_shards:
            shard.server.registry.unregister(name)
        return entry

    def load(self, name: str, path, validate: bool = True) -> ModelEntry:
        """Load a checkpoint once, then fan the entry out to its
        replicas (validation runs once, not per shard)."""
        scratch = ModelRegistry()
        entry = scratch.load(name, path, validate=validate)
        return self.register_model(name, entry.model, entry.problem,
                                   path=entry.path, meta=entry.meta)

    def unregister(self, name: str) -> None:
        for shard in self.shards:
            shard.server.registry.unregister(name)
        with self._lock:
            self._catalog.pop(name, None)

    def prune_spill(self) -> int:
        """Fan spill pruning out to every shard; total files removed."""
        removed = 0
        for shard in self.shards:
            live = {e.version for e in shard.server.registry.entries()}
            removed += shard.server.cache.prune_spill(live)
        return removed

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._catalog))

    def get(self, name: str) -> ModelEntry:
        """The primary replica's entry (metadata reads never eject)."""
        _, replicas = self._route(name)
        return replicas[0].server.registry.get(name)

    def replicas_for(self, name: str) -> list[str]:
        """Shard ids serving ``name``, primary first."""
        _, replicas = self._route(name)
        return [shard.id for shard in replicas]

    def _route(self, name: str) -> tuple[str, list[Shard]]:
        with self._lock:
            version = self._catalog.get(name)
            known = sorted(self._catalog)
            if version is None:
                raise RegistryError(
                    f"no model named {name!r} registered in the fleet; "
                    f"available: {known}")
            # Lookup + id->shard mapping under one lock hold: membership
            # changes swap the ring and prune ``_by_id`` together, and a
            # replica list must never mix the two generations.
            ids = self._ring.lookup((name, version), n=self._r)
            return version, [self._by_id[i] for i in ids]

    # ------------------------------------------------------------------ #
    # Routed front-ends
    # ------------------------------------------------------------------ #
    def submit(self, model_name: str, omega: np.ndarray,
               resolution: int | None = None, *,
               priority: int | None = None,
               deadline_s: float | None = None,
               tenant: str | None = None) -> Future:
        """Route one prediction to its replica set; returns a Future.

        The primary healthy replica gets the request; a shard fault
        (anything but a request-level error) ejects that shard and
        re-dispatches to the next replica transparently.  Like
        ``PredictionServer.submit``, backpressure (``ServerOverloaded``)
        and an exhausted replica set (``FleetUnavailable``) raise
        synchronously on the initial dispatch — during an asynchronous
        failover they arrive through the future instead.

        With an admission controller installed (``self.admission``) a
        ``tenant``-tagged request first spends one token from that
        tenant's bucket; an empty bucket raises
        :class:`~repro.serve.errors.TenantThrottled` synchronously.
        Throttled requests still count as submitted — the conservation
        law covers them via the ``throttled`` counter.  With a balancer
        installed (``self.balancer``) the replica set is reordered per
        read (power-of-two-choices on queue depth) before dispatch.
        """
        omega = np.asarray(omega, dtype=np.float64).reshape(-1)
        tel = self.telemetry
        span = None
        if tel is not None:
            span = tel.tracer.start("fleet.request", model=model_name)
        admission = self.admission
        if tenant is not None and admission is not None:
            retry_after = admission.try_acquire(tenant)
            if retry_after is not None:
                with self._lock:
                    self._c["submitted"] += 1
                    self._c["throttled"] += 1
                if span is not None:
                    span.finish(outcome="throttled")
                quota = admission.quota_for(tenant)
                raise TenantThrottled(model_name, tenant, retry_after,
                                      rate=quota.rate, burst=quota.burst)
        try:
            _, replicas = self._route(model_name)
        except RegistryError:
            # An unknown model is the caller's error, raised before the
            # request is ever counted — close the span so it exports.
            if span is not None:
                span.finish(outcome="error")
            raise
        replicas = self._order_replicas(model_name, replicas)
        state = _RouteState(model_name, omega, resolution, priority,
                            deadline_s, replicas, tenant=tenant)
        state.trace = span
        out = _FleetFuture(state)
        with self._lock:
            self._c["submitted"] += 1
        self._dispatch(out, state, sync=True)
        hedge = self.hedge
        if hedge is not None and len(replicas) > 1 and not out.done():
            self._arm_hedge(out, hedge)
        return out

    def _order_replicas(self, model_name: str,
                        replicas: list[Shard]) -> list[Shard]:
        """Apply the balancer (p2c spread) and breaker (open circuits to
        the back of the line, never out of it) to a read's replica set."""
        balancer = self.balancer
        if balancer is not None and len(replicas) > 1:
            ordered = balancer.order(replicas)
            if ordered[0] is not replicas[0]:
                with self._lock:
                    self._c["spreads"] += 1
            replicas = ordered
        breaker = self.breaker
        if breaker is not None and len(replicas) > 1:
            allowed: list[Shard] = []
            deflected: list[Shard] = []
            for candidate in replicas:
                (allowed if breaker.allow((model_name, candidate.id))
                 else deflected).append(candidate)
            if allowed and deflected:
                # Open circuits go to the back of the line, never out
                # of it: a breaker deflects load toward replicas that
                # answer, but must not drop a request — when everything
                # else faults, the open circuit is still the last
                # resort and conservation holds.
                replicas = allowed + deflected
                with self._lock:
                    self._c["breaker_open"] += len(deflected)
        return replicas

    def stream(self, model_name: str, omega: np.ndarray,
               resolution: int | None = None, *,
               priority: int | None = None,
               deadline_s: float | None = None,
               tenant: str | None = None,
               tiles=None, buffer_tiles: int = 2):
        """Routed streaming read: a generator of ``(tile_index,
        core_slices, core)`` records with *mid-stream* failover.

        Tiles the consumer already holds are never re-sent: the first
        replica fixes the tile-index set, and when a shard faults or
        stalls past ``shard_timeout_s`` mid-stream, the replacement
        replica is asked for exactly the undelivered subset
        (``submit_stream(..., tiles=...)``) — counted ``stream_resumed``
        — while every record handed out increments
        ``stream_tiles_delivered`` and charges the per-tile response hop
        to the comm model.  The conservation law covers streams like any
        other submit: each ends in exactly one of served / rejected /
        expired / errors / cancelled / unavailable / throttled
        (abandoning the generator mid-stream counts ``cancelled`` when
        it is closed).  A terminal
        :class:`~repro.serve.errors.DeadlineExceeded` carries the
        fleet-level ``tiles_delivered`` across all attempts.  Policy
        verdicts surface on the first ``next``, not at call time; hedged
        backups and retry policies do not apply to streams (a stream is
        one stateful read, not a repeatable call).
        """
        omega = np.asarray(omega, dtype=np.float64).reshape(-1)
        admission = self.admission
        if tenant is not None and admission is not None:
            retry_after = admission.try_acquire(tenant)
            if retry_after is not None:
                with self._lock:
                    self._c["submitted"] += 1
                    self._c["throttled"] += 1
                quota = admission.quota_for(tenant)
                raise TenantThrottled(model_name, tenant, retry_after,
                                      rate=quota.rate, burst=quota.burst)
        _, replicas = self._route(model_name)
        replicas = self._order_replicas(model_name, replicas)
        return self._stream_iter(model_name, omega, resolution, priority,
                                 deadline_s, tenant, replicas, tiles,
                                 buffer_tiles)

    def _stream_iter(self, model_name: str, omega: np.ndarray,
                     resolution: int | None, priority: int | None,
                     deadline_s: float | None, tenant: str | None,
                     replicas: list[Shard], tiles, buffer_tiles: int):
        """Telemetry front of :meth:`_stream_run`: one ``fleet.stream``
        root span per consumed stream, an instant ``stream.tile`` child
        per record handed out, outcome stamped with the same
        conservation-law term the counters record."""
        inner = self._stream_run(model_name, omega, resolution, priority,
                                 deadline_s, tenant, replicas, tiles,
                                 buffer_tiles)
        tel = self.telemetry
        if tel is None:
            yield from inner
            return
        span = tel.tracer.start("fleet.stream", model=model_name)
        tiles_out = 0
        try:
            for record in inner:
                ts = tel.tracer.start("stream.tile", parent=span,
                                      tile=record[0])
                ts.finish()
                tiles_out += 1
                yield record
        except GeneratorExit:
            span.finish(outcome="cancelled", tiles=tiles_out)
            inner.close()
            raise
        except ServerOverloaded:
            span.finish(outcome="rejected", tiles=tiles_out)
            raise
        except TenantThrottled:
            span.finish(outcome="throttled", tiles=tiles_out)
            raise
        except DeadlineExceeded:
            span.finish(outcome="expired", tiles=tiles_out)
            raise
        except FleetUnavailable:
            span.finish(outcome="unavailable", tiles=tiles_out)
            raise
        except Exception:
            span.finish(outcome="error", tiles=tiles_out)
            raise
        else:
            span.finish(outcome="served", tiles=tiles_out)

    def _stream_run(self, model_name: str, omega: np.ndarray,
                    resolution: int | None, priority: int | None,
                    deadline_s: float | None, tenant: str | None,
                    replicas: list[Shard], tiles, buffer_tiles: int):
        """Generator body of :meth:`stream` (runs on first ``next``).

        Submission is counted here, when iteration actually starts, so
        a stream opened but never consumed leaves the conservation law
        untouched instead of permanently one short.
        """
        with self._lock:
            self._c["submitted"] += 1
            self._c["streams"] += 1
        budget = self.config.shard_timeout_s
        delivered: set[int] = set()
        expected: set[int] | None = None   # fixed by the first replica
        remaining = tiles
        next_idx = 0
        health_retried = False
        ignore_health = False
        resuming = False
        while True:
            shard = None
            with self._lock:
                while next_idx < len(replicas):
                    candidate = replicas[next_idx]
                    next_idx += 1
                    if candidate.healthy or ignore_health:
                        shard = candidate
                        break
            if shard is None:
                if not health_retried:
                    # Same last resort as _dispatch: one pass ignoring
                    # health marks before declaring the key unavailable.
                    health_retried = True
                    ignore_health = True
                    next_idx = 0
                    continue
                with self._lock:
                    self._c["unavailable"] += 1
                raise FleetUnavailable(
                    model_name, [s.id for s in replicas])
            self._comm.send(omega.nbytes)      # routing hop: ω out
            try:
                source = shard.server.submit_stream(
                    model_name, omega, resolution, priority=priority,
                    deadline_s=deadline_s, tenant=tenant, tiles=remaining,
                    buffer_tiles=buffer_tiles)
            except ServerOverloaded:
                with self._lock:
                    self._c["rejected"] += 1
                raise
            except TenantThrottled:
                with self._lock:
                    self._c["throttled"] += 1
                raise
            except (ValueError, RegistryError, ServeError):
                with self._lock:
                    self._c["errors"] += 1
                raise
            except Exception as exc:
                self._eject(shard, exc)
                self._breaker_failure(model_name, shard)
                with self._lock:
                    self._c["failovers"] += 1
                continue
            if expected is None:
                expected = set(source.tile_indices)
            if resuming:
                resuming = False
                with self._lock:
                    self._c["stream_resumed"] += 1
            fault: BaseException | None = None
            hang = False
            try:
                while True:
                    try:
                        record = source.next_record(timeout=budget)
                    except StopIteration:
                        break
                    except StreamStalled:
                        fault = TimeoutError(
                            f"shard {shard.id} stalled mid-stream past "
                            f"shard_timeout_s={budget}")
                        hang = True
                        break
                    except DeadlineExceeded as exc:
                        with self._lock:
                            self._c["expired"] += 1
                        # Fleet-level progress across all attempts.
                        exc.tiles_delivered = len(delivered)
                        raise
                    except ServerOverloaded:
                        with self._lock:
                            self._c["rejected"] += 1
                        raise
                    except TenantThrottled:
                        with self._lock:
                            self._c["throttled"] += 1
                        raise
                    except (ServeError, ValueError, RegistryError):
                        with self._lock:
                            self._c["errors"] += 1
                        raise
                    except Exception as exc:
                        fault = exc
                        break
                    i, sl, core = record
                    if i in delivered:
                        continue   # failover guard: never re-sent
                    delivered.add(i)
                    with self._lock:
                        self._c["stream_tiles_delivered"] += 1
                    self._comm.send(core.nbytes)   # response hop, per tile
                    yield i, sl, core
            except GeneratorExit:
                with self._lock:
                    self._c["cancelled"] += 1
                source.close()
                raise
            if fault is None:
                with self._lock:
                    self._c["served"] += 1
                self._readmit(shard)
                self._breaker_success(model_name, shard)
                return
            source.close()
            self._eject(shard, fault, hang=hang)
            self._breaker_failure(model_name, shard)
            with self._lock:
                self._c["failovers"] += 1
            remaining = sorted(expected - delivered)
            if not remaining:
                # The fault landed after the last tile reached the
                # consumer: the stream is complete.
                with self._lock:
                    self._c["served"] += 1
                return
            resuming = True

    def predict(self, model_name: str, omega: np.ndarray,
                resolution: int | None = None,
                timeout: float | None = None, *,
                priority: int | None = None,
                deadline_s: float | None = None,
                tenant: str | None = None) -> np.ndarray:
        """Blocking routed prediction with hang failover.

        With ``config.shard_timeout_s`` set, a shard that neither
        answers nor errors within the budget is treated as hung: it is
        ejected and the request re-dispatched to the next replica —
        the blocking counterpart of the error-failover ``submit`` does
        asynchronously.  ``timeout`` bounds the overall wait.

        With a retry policy installed (``self.retry``) a transient
        verdict — :class:`FleetUnavailable`, :class:`ServerOverloaded`,
        :class:`TenantThrottled` — is re-submitted after the policy's
        jittered backoff (``retry_after_s`` for throttles), as long as
        the fleet-wide retry budget grants a token.  Every retry is a
        fresh submit, so each attempt is individually conserved and
        ``retried`` counts the extras.
        """
        policy = self.retry
        attempt = 0
        while True:
            try:
                return self.await_result(
                    self.submit(model_name, omega, resolution,
                                priority=priority, deadline_s=deadline_s,
                                tenant=tenant),
                    timeout)
            except Exception as exc:
                if policy is None:
                    raise
                delay = policy.plan(exc, attempt)
                if delay is None:
                    raise
                attempt += 1
                self.note_retry()
                if delay > 0:
                    time.sleep(delay)

    def note_retry(self) -> None:
        """Count one policy-driven re-submit.  Retrying front-ends (the
        blocking ``predict``, the asyncio facade, the replay harness)
        all report here so ``FleetStats.retried`` covers every path."""
        with self._lock:
            self._c["retried"] += 1

    def await_result(self, future: Future, timeout: float | None = None):
        """``future.result`` with hang failover for fleet futures.

        Blocking callers that hold raw ``submit`` futures (the CLI
        client loop, ``predict_many``) drain through here so
        ``config.shard_timeout_s`` ejects hung shards on their path
        too, not only in ``predict``.  Non-fleet futures just wait.
        """
        shard_budget = self.config.shard_timeout_s
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            wait = shard_budget
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return future.result(0)
                wait = remaining if wait is None else min(wait, remaining)
            try:
                return future.result(wait)
            except DeadlineExceeded:
                raise                      # request-level, not a hang
            except FutureTimeout:
                if future.done():
                    # The answer landed in the race window between the
                    # wait lapsing and here; the next result() call
                    # returns the stored outcome immediately.
                    continue
                if not self.hang_failover(future):
                    if (deadline is not None
                            and time.monotonic() >= deadline):
                        raise

    def hang_failover(self, future: Future) -> bool:
        """Eject the shard a fleet future has been waiting on past
        ``shard_timeout_s`` and re-dispatch to the next replica.

        The non-blocking hang-recovery primitive shared by every
        front-end: ``await_result`` calls it after a wait times out, and
        the asyncio facade calls it from the event loop.  Returns
        ``True`` when a failover was performed, ``False`` when there is
        nothing to do (no fleet state, budget not yet elapsed on the
        current attempt, or the answer already landed).
        """
        state = getattr(future, "state", None)
        budget = self.config.shard_timeout_s
        if state is None or budget is None or future.done():
            return False
        with self._lock:
            elapsed = time.monotonic() - state.attempt_started
            hung = state.current
            if (hung is None or state.delivered
                    or elapsed < budget * 0.999):
                return False
            state.current = None   # claim: exactly one caller fails over
        self._eject(hung, TimeoutError(
            f"shard {hung.id} did not answer within "
            f"shard_timeout_s={budget}"), hang=True)
        self._breaker_failure(state.model_name, hung)
        with self._lock:
            if state.delivered:
                return False
            self._c["failovers"] += 1
        self._dispatch(future, state)
        return True

    def predict_many(self, model_name: str, omegas: np.ndarray,
                     resolution: int | None = None,
                     timeout: float | None = None, *,
                     priority: int | None = None,
                     deadline_s: float | None = None,
                     tenant: str | None = None) -> np.ndarray:
        omegas = np.atleast_2d(np.asarray(omegas, dtype=np.float64))
        futures = [self.submit(model_name, w, resolution, priority=priority,
                               deadline_s=deadline_s, tenant=tenant)
                   for w in omegas]
        return np.stack([self.await_result(f, timeout) for f in futures])

    # ------------------------------------------------------------------ #
    # Dispatch, failover, delivery
    # ------------------------------------------------------------------ #
    def _dispatch(self, out: Future, state: _RouteState,
                  sync: bool = False) -> None:
        """Hand the request to the next healthy replica (loops past
        shards that fault synchronously)."""
        while True:
            shard = None
            with self._lock:
                while state.next_idx < len(state.replicas):
                    candidate = state.replicas[state.next_idx]
                    state.next_idx += 1
                    if candidate.healthy or state.ignore_health:
                        shard = candidate
                        break
                state.current = shard
                state.attempt_started = time.monotonic()
            if shard is None:
                if not state.health_retried:
                    # Last resort before declaring the key unavailable:
                    # one pass over the replica set *ignoring* health
                    # marks.  Some ejections are false positives (the
                    # hang budget includes queue wait), and unlike a
                    # blocking probe this retry is safe from any thread
                    # — a worker callback or the event loop.  A shard
                    # that answers is re-admitted on delivery; a truly
                    # dead one faults straight through to the
                    # unavailable verdict below.
                    state.health_retried = True
                    state.ignore_health = True
                    state.next_idx = 0
                    continue
                exc = FleetUnavailable(
                    state.model_name, [s.id for s in state.replicas])
                self._deliver(out, state, exc=exc, counter="unavailable")
                if sync:
                    raise exc from None
                return
            self._comm.send(state.omega.nbytes)   # routing hop: ω out
            tel = self.telemetry
            aspan = None
            if tel is not None and state.trace is not None:
                aspan = tel.tracer.start("fleet.attempt",
                                         parent=state.trace, shard=shard.id)
            try:
                inner = shard.server.submit(
                    state.model_name, state.omega, state.resolution,
                    priority=state.priority, deadline_s=state.deadline_s,
                    tenant=state.tenant, trace_parent=aspan)
            except ServerOverloaded as exc:
                # Backpressure is scheduling policy, not a shard fault:
                # the caller sheds or retries; nobody gets ejected.
                if aspan is not None:
                    aspan.finish(outcome="rejected")
                self._deliver(out, state, exc=exc, counter="rejected")
                if sync:
                    raise
                return
            except TenantThrottled as exc:
                # Shard-level admission (a server with its own
                # controller): policy, not a fault — account it under
                # the throttle term of the conservation law.
                if aspan is not None:
                    aspan.finish(outcome="throttled")
                self._deliver(out, state, exc=exc, counter="throttled")
                if sync:
                    raise
                return
            except (ValueError, RegistryError, ServeError) as exc:
                if aspan is not None:
                    aspan.finish(outcome="error")
                self._deliver(out, state, exc=exc, counter="errors")
                if sync:
                    raise
                return
            except Exception as exc:
                if aspan is not None:
                    aspan.finish(outcome="fault",
                                 error=type(exc).__name__)
                self._eject(shard, exc)
                self._breaker_failure(state.model_name, shard)
                with self._lock:
                    self._c["failovers"] += 1
                continue
            with self._lock:
                state.inners.append(inner)
            # Per-attempt anchor: the hedge policy must learn *service*
            # latency of the attempt that answers, not submit-anchored
            # wall time (which folds in hung primaries and hedge delays
            # and would ratchet the quantile toward max_delay_s).
            anchor = time.monotonic()
            inner.add_done_callback(
                lambda f, shard=shard, anchor=anchor, aspan=aspan:
                self._on_done(out, state, shard, f, anchor, aspan))
            return

    def _on_done(self, out: Future, state: _RouteState, shard: Shard,
                 inner: Future, anchor: float | None = None,
                 span=None) -> None:
        """Classify a shard answer: deliver, or eject + fail over."""
        try:
            exc = inner.exception()
        except CancelledError as cancel:
            exc = cancel
        if exc is None:
            value = inner.result()
            won = self._deliver(out, state, result=value, counter="served",
                                anchor=anchor)
            if span is not None:
                span.finish(outcome="served", won=won)
            if won:
                self._comm.send(value.nbytes)     # response hop: field back
                # An answer is the strongest health probe there is: a
                # shard serving from the ignore-health last-resort pass
                # (ejected on a false hang) re-admits itself.
                self._readmit(shard)
                self._breaker_success(state.model_name, shard)
            return
        if isinstance(exc, ServerOverloaded):
            if span is not None:
                span.finish(outcome="rejected")
            self._deliver(out, state, exc=exc, counter="rejected")
            return
        if isinstance(exc, TenantThrottled):
            if span is not None:
                span.finish(outcome="throttled")
            self._deliver(out, state, exc=exc, counter="throttled")
            return
        if isinstance(exc, DeadlineExceeded):
            if span is not None:
                span.finish(outcome="expired")
            self._deliver(out, state, exc=exc, counter="expired")
            return
        if isinstance(exc, (ServeError, ValueError, RegistryError)):
            if span is not None:
                span.finish(outcome="error")
            self._deliver(out, state, exc=exc, counter="errors")
            return
        if isinstance(exc, CancelledError):
            # A cancelled attempt is nobody's fault: hedge racing sheds
            # the losing inner future after the answer landed, and
            # ejecting the loser would punish a healthy replica for
            # being second.  An *undelivered* cancelled attempt (a
            # caller reached into the inner future) still fails over
            # below so the request is not lost — just without ejecting.
            if span is not None:
                span.finish(outcome="cancelled")
            with self._lock:
                if state.delivered:
                    return
        else:
            # Anything else is the shard's fault, not the request's.
            if span is not None:
                span.finish(outcome="fault", error=type(exc).__name__)
            self._eject(shard, exc)
            self._breaker_failure(state.model_name, shard)
        with self._lock:
            if state.delivered or state.current is not shard:
                # A newer attempt owns this request (hang failover
                # already moved on): record the fault, but a stale
                # straggler must not burn the remaining replicas.
                return
            state.current = None          # claim the re-dispatch
            self._c["failovers"] += 1
        self._dispatch(out, state)

    def _deliver(self, out: Future, state: _RouteState, *,
                 result=None, exc: BaseException | None = None,
                 counter: str = "served",
                 anchor: float | None = None) -> bool:
        """Resolve the fleet future exactly once and count the outcome.

        Returns ``False`` when this call lost the delivery race (a hang
        failover already answered) or the caller cancelled — stragglers
        must neither overwrite the result nor double-count.

        ``anchor`` is the winning attempt's dispatch stamp.  Client
        latency (``_latencies``) stays submit-anchored — a request that
        burned ``shard_timeout_s`` on a hung primary must report that
        wait — but the hedge policy's window gets ``now - anchor``, the
        *service* latency of the attempt that actually answered.
        Feeding submit-anchored samples would poison the quantile: every
        hedged win and hang failover folds the primary's wait into the
        sample, ratcheting the delay toward ``max_delay_s`` and
        disabling hedging exactly when it is needed.  Failed, cancelled
        and breaker-deflected attempts never reach this observation at
        all (``exc`` delivery records no sample; stragglers bounce off
        the delivered-guard above).
        """
        with self._lock:
            if state.delivered:
                return False
            state.delivered = True
        try:
            live = out.set_running_or_notify_cancel()
        except InvalidStateError:  # pragma: no cover - delivered guards this
            return False
        latency = None
        now = time.monotonic()
        with self._lock:
            self._c[counter if live else "cancelled"] += 1
            if live and exc is None:
                latency = now - state.submitted_at
                self._latencies.append(latency)
                if len(self._latencies) > _LAT_WINDOW:
                    del self._latencies[:len(self._latencies) - _LAT_WINDOW]
        if state.trace is not None:
            # Root span outcome == the conservation-law term counted.
            state.trace.finish(outcome=counter if live else "cancelled")
        if live:
            if exc is not None:
                out.set_exception(exc)
            else:
                out.set_result(result)
        hedge = self.hedge
        if hedge is not None and latency is not None:
            hedge.observe(now - anchor if anchor is not None else latency)
        if state.hedged:
            self._cancel_stragglers(state)
        return live

    # ------------------------------------------------------------------ #
    # Hedged reads + circuit-breaker bookkeeping
    # ------------------------------------------------------------------ #
    def _arm_hedge(self, out: "_FleetFuture", hedge) -> None:
        """Schedule a backup dispatch at now + the policy's tracked
        quantile delay (the timer thread is created lazily)."""
        with self._lock:
            timer = self._hedge_timer
            if timer is None:
                timer = self._hedge_timer = HedgeTimer()
        timer.schedule(time.monotonic() + hedge.delay_s(),
                       lambda: self.hedge_dispatch(out))

    def hedge_dispatch(self, future: Future) -> bool:
        """Issue one backup request for a still-pending fleet read.

        The hedge policy's dispatch primitive: the timer calls it after
        the quantile delay elapses, and deterministic tests call it
        directly.  Picks the first healthy replica that is not the
        current owner (skipping open circuits), charges the routing
        hop, and races the backup against the primary — the delivered
        -guard in ``_deliver`` makes the race safe: first answer wins,
        exactly one outcome is counted, the loser is cancelled.
        Returns ``True`` when a backup was actually issued.
        """
        state = getattr(future, "state", None)
        hedge = self.hedge
        if state is None or hedge is None or future.done():
            return False
        with self._lock:
            if state.delivered or state.hedged or state.current is None:
                return False
            state.hedged = True
            primary = state.current
            candidates = [s for s in state.replicas
                          if s.healthy and s is not primary]
        breaker = self.breaker
        tel = self.telemetry
        for shard in candidates:
            if breaker is not None and not breaker.allow(
                    (state.model_name, shard.id)):
                continue
            self._comm.send(state.omega.nbytes)   # routing hop: ω out
            hspan = None
            if tel is not None and state.trace is not None:
                hspan = tel.tracer.start("fleet.hedge",
                                         parent=state.trace, shard=shard.id)
            try:
                inner = shard.server.submit(
                    state.model_name, state.omega, state.resolution,
                    priority=state.priority, deadline_s=state.deadline_s,
                    tenant=state.tenant, trace_parent=hspan)
            except (ServerOverloaded, TenantThrottled, ValueError,
                    RegistryError, ServeError):
                if hspan is not None:
                    hspan.finish(outcome="policy")
                continue     # policy verdicts: the primary decides
            except Exception as exc:
                if hspan is not None:
                    hspan.finish(outcome="fault",
                                 error=type(exc).__name__)
                self._eject(shard, exc)
                self._breaker_failure(state.model_name, shard)
                continue
            with self._lock:
                self._c["hedges"] += 1
                state.inners.append(inner)
            hedge.record_hedge()
            anchor = time.monotonic()
            inner.add_done_callback(
                lambda f, shard=shard, anchor=anchor, hspan=hspan:
                self._on_hedge_done(future, state, shard, f, anchor, hspan))
            return True
        return False

    def _on_hedge_done(self, out: Future, state: _RouteState,
                       shard: Shard, inner: Future,
                       anchor: float | None = None, span=None) -> None:
        """Classify a backup answer: first answer wins, losing or
        policy-rejected backups stay silent (the primary attempt still
        owns the request — a hedge must never *cause* a failure), and
        a backup shard fault ejects without re-dispatching."""
        try:
            exc = inner.exception()
        except CancelledError:
            if span is not None:
                span.finish(outcome="cancelled")
            return                       # shed straggler: already won
        if exc is None:
            value = inner.result()
            won = self._deliver(out, state, result=value, counter="served",
                                anchor=anchor)
            if span is not None:
                span.finish(outcome="served", won=won)
            if won:
                with self._lock:
                    self._c["hedged_wins"] += 1
                hedge = self.hedge
                if hedge is not None:
                    hedge.record_win()
                self._comm.send(value.nbytes)     # response hop
                self._readmit(shard)
                self._breaker_success(state.model_name, shard)
            return
        if isinstance(exc, (CancelledError, ServerOverloaded,
                            TenantThrottled, DeadlineExceeded, ServeError,
                            ValueError, RegistryError)):
            if span is not None:
                span.finish(outcome="policy", error=type(exc).__name__)
            return
        if span is not None:
            span.finish(outcome="fault", error=type(exc).__name__)
        self._eject(shard, exc)
        self._breaker_failure(state.model_name, shard)

    def _cancel_stragglers(self, state: _RouteState) -> None:
        """Cancel every unfinished attempt of a resolved hedge race.

        Queued losers are shed before they burn a worker slot (counted
        ``hedge_cancels``); already-running ones finish and bounce off
        the delivered-guard.
        """
        with self._lock:
            pending = [f for f in state.inners if not f.done()]
        hedge = self.hedge
        for inner in pending:
            if inner.cancel():
                with self._lock:
                    self._c["hedge_cancels"] += 1
                if hedge is not None:
                    hedge.record_cancel()

    def _breaker_success(self, model_name: str, shard: Shard) -> None:
        breaker = self.breaker
        if breaker is not None:
            breaker.record_success((model_name, shard.id))

    def _breaker_failure(self, model_name: str, shard: Shard) -> None:
        breaker = self.breaker
        if breaker is not None:
            breaker.record_failure((model_name, shard.id))

    # ------------------------------------------------------------------ #
    # Health
    # ------------------------------------------------------------------ #
    def _readmit(self, shard: Shard) -> None:
        """Mark a shard healthy again (probe success, or a served
        answer from the last-resort ignore-health pass)."""
        with self._lock:
            if shard.healthy:
                return
            shard.healthy = True
            shard.ejected_at = None
            self._c["readmissions"] += 1

    def _eject(self, shard: Shard, exc: BaseException,
               hang: bool = False) -> None:
        with self._lock:
            shard.fault_count += 1
            shard.last_error = exc
            if not shard.healthy:
                return
            shard.healthy = False
            shard.ejected_at = time.monotonic()
            self._c["shard_faults"] += 1
            if hang:
                self._c["hangs"] += 1

    @property
    def healthy_shards(self) -> list[str]:
        with self._lock:
            return [s.id for s in self.shards if s.healthy]

    def check_health(self) -> list[str]:
        """Probe ejected shards past their cool-down; re-admit the ones
        that answer a real (tiny) prediction.  Returns re-admitted ids."""
        now = time.monotonic()
        candidates = []
        with self._lock:
            for shard in self.shards:
                if shard.healthy:
                    continue
                ejected = shard.ejected_at or 0.0
                if now - ejected >= self.config.probe_after_s:
                    candidates.append(shard)
        readmitted = []
        for shard in candidates:
            if self.probe_shard(shard):
                readmitted.append(shard.id)
        return readmitted

    def probe_shard(self, shard: "Shard | str",
                    timeout_s: float | None = None) -> bool:
        """Probe one shard (by object or id); re-admit on success.

        The control-plane prober's entry point: unlike ``check_health``
        this targets exactly one shard and accepts an explicit probe
        budget, so a *hung* shard costs the prober ``timeout_s`` per
        attempt instead of the generous default recovery budget.
        Returns ``True`` when the shard answered and was re-admitted.
        """
        if isinstance(shard, str):
            with self._lock:
                shard = self._by_id.get(shard)
            if shard is None:
                return False
        with self._lock:
            self._c["probes"] += 1
        if self._probe(shard, budget_s=timeout_s):
            self._readmit(shard)
            return True
        return False

    def _probe(self, shard: Shard, budget_s: float | None = None) -> bool:
        """One real prediction through the shard's own front-end.

        A unique probe ω defeats the result cache (a cached field would
        mask a still-broken forward path); a shard serving no models is
        trivially healthy.
        """
        entries = shard.server.registry.entries()
        if not entries:
            return True
        entry = entries[0]
        with self._lock:
            self._probe_seq += 1
            seq = self._probe_seq
        omega = np.full(entry.problem.field.m, 1e-3 * seq)
        if budget_s is None:
            # The probe must be able to succeed on a shard that was
            # ejected for being *slow*, not broken: give it a budget
            # well above the hang threshold and let it jump any backlog
            # that caused the false ejection in the first place.
            budget_s = max(30.0, 4 * (self.config.shard_timeout_s or 0.0))
        try:
            shard.server.predict(entry.name, omega, timeout=budget_s,
                                 priority=2 ** 31)
        except Exception:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Elastic membership: spawn / drain / decommission shards
    # ------------------------------------------------------------------ #
    def add_shard(self) -> str:
        """Spawn one shard and rebalance routing onto it; returns its id.

        Ordering is reconcile-before-swap: the new ring is computed,
        every model it routes to the newcomer is registered *first*,
        and only then does the ring swap in — routing never targets a
        shard that has not got the model yet.  Consistent hashing keeps
        the movement minimal: only keys whose replica set gains the new
        shard re-register; everything else stays put.

        Old owners displaced by the newcomer keep their registration as
        a *grace copy*: requests routed just before the swap are already
        queued on them and must still find the model.  Grace copies cost
        a registry reference (the model object is shared), are never
        routed to by the new ring, and make membership changes safe
        against in-flight work by construction instead of by timing.
        """
        shard = self._make_shard()
        shard.server.executor.warm()
        if self.running:
            shard.server.start()
        with self._lock:
            self.shards.append(shard)
            self._by_id[shard.id] = shard
            new_ring = HashRing([s.id for s in self.shards],
                                vnodes=self.config.vnodes)
            self._reconcile(new_ring)
            self._ring = new_ring
            self._c["scale_ups"] += 1
        return shard.id

    def retire_shard(self, shard_id: str | None = None,
                     drain_timeout_s: float = 30.0) -> str:
        """Drain one shard out of the fleet and tear it down; its id.

        Default victim is the least-loaded healthy shard (lowest queue
        depth) — retiring the busiest one would maximize disruption.
        The shard leaves the ring first (reconcile-before-swap moves
        its keys to the survivors), keeps its registry so in-flight and
        queued work still completes, is drained up to
        ``drain_timeout_s``, and only then closed.  Requests routed
        before the swap that fault on the closed server fail over along
        their replica list as usual — conservation holds throughout.
        """
        with self._lock:
            if len(self.shards) <= 1:
                raise ValueError("cannot retire the last shard")
            if shard_id is None:
                victims = [s for s in self.shards if s.healthy]
                victims = victims or list(self.shards)
                shard = min(victims, key=lambda s: s.queue_depth)
            else:
                shard = self._by_id[shard_id]
            self.shards.remove(shard)
            self._retired.append(shard)   # stays a re-registration
            #                               source for _reconcile
            new_ring = HashRing([s.id for s in self.shards],
                                vnodes=self.config.vnodes)
            self._reconcile(new_ring)
            self._ring = new_ring
            del self._by_id[shard.id]
            self._c["scale_downs"] += 1
        # Drain outside the lock: waiting on the retiree's queue while
        # holding the fleet lock would stall every submit in the fleet.
        deadline = time.monotonic() + drain_timeout_s
        while (shard.server.queue_depth() > 0
               and time.monotonic() < deadline):
            time.sleep(0.005)
        shard.server.close()
        return shard.id

    def decommission_shard(self, shard_id: str) -> int:
        """Remove a permanently lost shard and re-replicate its keys.

        The prober's last resort after ``permanent_after`` consecutive
        probe failures: the shard leaves the ring, survivors that the
        new ring assigns its keys get fresh registrations (copied from
        any remaining holder), and teardown is *best effort* on a
        daemon thread — joining a hung server's workers could block
        forever, and a dead host owes nobody a clean shutdown.  Returns
        the number of (key, shard) re-registrations performed.
        """
        with self._lock:
            shard = self._by_id.get(shard_id)
            if shard is None:
                return 0
            if len(self.shards) <= 1:
                raise ValueError("cannot decommission the last shard")
            shard.healthy = False
            self.shards.remove(shard)
            self._retired.append(shard)
            new_ring = HashRing([s.id for s in self.shards],
                                vnodes=self.config.vnodes)
            moves = self._reconcile(new_ring, exclude=(shard,))
            self._ring = new_ring
            del self._by_id[shard.id]
            self._c["decommissions"] += 1
        threading.Thread(target=shard.server.close, daemon=True).start()
        return moves

    def _reconcile(self, ring: HashRing, exclude: tuple = ()) -> int:
        """Register every catalogued model onto the replicas the *new*
        ring assigns it, copying the entry from any current holder.

        Called with the fleet lock held, BEFORE the ring swaps in.
        ``exclude`` names shards that must not serve as a copy source
        (a decommissioned host is gone; its registry is unreachable by
        assumption even if the simulation could still read it).
        Returns the number of (key, shard) registrations performed.
        """
        moves = 0
        r = min(self.config.replicas, max(1, len(self.shards)))
        dropped = {s.id for s in exclude}
        for name, version in list(self._catalog.items()):
            desired = ring.lookup((name, version), n=r)
            source = None
            for holder in list(self.shards) + list(self._retired):
                if holder.id in dropped:
                    continue
                try:
                    entry = holder.server.registry.get(name)
                except Exception:
                    continue
                if entry.version == version:
                    source = entry
                    break
            if source is None:
                continue   # no surviving holder; nothing to copy from
            for sid in desired:
                target = self._by_id.get(sid)
                if target is None:
                    continue
                try:
                    have = target.server.registry.get(name)
                except Exception:
                    have = None
                if have is not None and have.version == version:
                    continue
                target.server.registry.register_model(
                    name, source.model, source.problem, path=source.path,
                    meta=source.meta, version=version)
                moves += 1
        if moves:
            self._c["reregistrations"] += moves
        return moves

    # Note there is deliberately no prune step after a membership
    # change.  Shrinking the ring never takes a key away from a
    # survivor (the R-walk only swaps the removed member for the next
    # distinct one), and on growth the displaced owners keep grace
    # copies: a request routed against the old ring may already sit in
    # their queue, and unregistering under it would fail that request
    # for no fault of its own.  Grace copies are registry references —
    # the model object is shared — and the ring never routes to them.

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> FleetStats:
        """Merged snapshot: fleet counters + summed per-shard stats."""
        with self._lock:
            merged = FleetStats(
                shards=len(self.shards),
                healthy_shards=sum(s.healthy for s in self.shards),
                latencies=list(self._latencies),
                **self._c)
            live = list(self.shards)
            retired = list(self._retired)
        log = self._comm.log
        merged.send_calls = log.send_calls
        merged.send_bytes = log.send_bytes
        merged.virtual_comm_seconds = log.virtual_comm_seconds
        # Retired shards are summed too: their serving history must not
        # vanish from the fleet totals when the autoscaler scales down.
        for shard in live + retired:
            s = shard.server.stats
            merged.requests += s.requests
            merged.cache_hits += s.cache_hits
            merged.dedup_hits += s.dedup_hits
            merged.batches += s.batches
            merged.batched_requests += s.batched_requests
            merged.tiled_forwards += s.tiled_forwards
        for shard in live:
            s = shard.server.stats
            merged.per_shard[shard.id] = {
                "healthy": shard.healthy,
                "faults": shard.fault_count,
                "requests": s.requests,
                "cache_hits": s.cache_hits,
                "errors": s.errors,
                "queue_depth": shard.queue_depth,
                "models": list(shard.server.registry.names()),
            }
        return merged

    def __repr__(self) -> str:
        healthy = len(self.healthy_shards)
        return (f"ShardedFleet(shards={len(self.shards)}, "
                f"healthy={healthy}, replicas={self._r}, "
                f"models={list(self.names())})")
