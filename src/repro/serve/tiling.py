"""Tiled megavoxel inference: exact full-field prediction in bounded memory.

A full U-Net forward at megavoxel resolution holds ``base_filters`` x the
input field in activations per layer — far beyond what one forward pass
can afford.  This module shards the spatial grid into halo-padded tiles,
runs the network tile by tile, and stitches an *exact* full-field result:

* tile starts and halo widths are aligned to ``2**depth`` so every
  down/up-sampling grid inside a tile coincides with the full-field one;
* the halo is at least the network's receptive-field radius, so the
  zero padding a 'same' conv applies at a padded tile's edge can never
  reach the tile's core region;
* at the physical domain boundary the tile is cropped instead of padded
  (:func:`repro.distributed.model_parallel.extract_padded_block`), so the
  network's own zero padding applies there exactly as in the full-field
  computation.

In eval mode every layer of MGDiffNet is spatially local (convolutions,
transposed convolutions, pointwise activations, BatchNorm with running
statistics), which is what makes the stitched result exact rather than
approximate.

Tile scratch buffers come from the active backend's :class:`BufferPool`,
so a long-running server recycles the same few tile allocations instead
of churning the allocator.

Tiles are *independent* (disjoint cores, read-only input), so the loop
over them is embarrassingly parallel: pass an
:class:`~repro.serve.executor.Executor` to fan tiles across a thread or
process pool.  Thread workers share the model and the (thread-safe)
buffer pool; process workers receive the pickled network bytes with each
task but *unpickle* it only once per model version (per-process cache) —
the models are small, it is the fields that are megavoxel — and each
child owns its own backend and pool (re-initialised by the executor's
worker init).  Tasks go out in bounded waves and results are stitched in
plan order on the caller, so memory stays bounded and the output is
deterministic and bitwise equal to the sequential path.
"""

from __future__ import annotations

import hashlib
import itertools
import pickle
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..autograd import Tensor, no_grad
from ..backend import get_pool
from ..backend.tuning import MeasurementCache
from ..core.inference import apply_bc_masks, prepare_batch_inputs
from ..distributed.model_parallel import extract_padded_block

__all__ = ["TilePlan", "receptive_halo", "plan_tiles", "tile_candidates",
           "autotune_tile", "tiled_forward", "tiled_predict",
           "stream_tiled_forward", "stream_tiled_predict"]

# Measured tile-size winners, persisted per host (the best tile trades
# per-tile overhead against working-set size — a property of this CPU's
# caches, not of the model).  Same seam as the conv-engine autotuner:
# host-fingerprinted JSON, env-var path override for test isolation.
_TILE_MEASUREMENTS = MeasurementCache(
    default_path=Path.home() / ".cache" / "repro" / "tile_autotune.json",
    env_var="REPRO_TILE_AUTOTUNE_CACHE")


@dataclass(frozen=True)
class TilePlan:
    """Axis-aligned tiling of a spatial grid.

    ``blocks`` holds, per tile, a tuple of per-axis ``(start, stop)``
    core ranges; halos are resolved at execution time against the domain
    boundary by :func:`extract_padded_block`.
    """

    shape: tuple[int, ...]
    tile: int
    halo: int
    multiple: int
    blocks: tuple[tuple[tuple[int, int], ...], ...]

    @property
    def num_tiles(self) -> int:
        return len(self.blocks)


def receptive_halo(model) -> int:
    """Conservative receptive-field radius of an MGDiffNet/UNet, rounded
    up to a multiple of ``2**depth`` (the tile alignment unit).

    Walking the architecture: each encoder level l contributes a k3 conv
    block plus a k2 stride-2 downsample (~2 * 2**l fine pixels), the
    bottleneck a k3 block at the coarsest scale (2**depth), each decoder
    level another k3 block (2**l), and each refinement block two k3
    layers at the finest scale.  Summing and rounding up gives a radius
    that provably covers the true receptive field.
    """
    net = getattr(model, "net", model)
    depth = net.depth
    unit = 2 ** depth
    n_ref = len(list(net.refinements.children())) if hasattr(
        net, "refinements") else 0
    radius = 4 * unit - 3 + 2 * n_ref
    return ((radius + unit - 1) // unit) * unit


def plan_tiles(shape: tuple[int, ...], tile: int, halo: int,
               multiple: int) -> TilePlan:
    """Partition a spatial ``shape`` into aligned core blocks.

    ``tile`` and ``halo`` must be positive multiples of ``multiple``
    (= ``2**depth``) and every spatial size must itself be divisible by
    ``multiple`` — the same constraint the U-Net puts on its input.
    """
    if tile < multiple or tile % multiple:
        raise ValueError(
            f"tile {tile} must be a positive multiple of {multiple}")
    if halo < 0 or halo % multiple:
        raise ValueError(f"halo {halo} must be a multiple of {multiple}")
    for s in shape:
        if s % multiple:
            raise ValueError(
                f"spatial size {s} not divisible by {multiple}")
    per_axis = [[(start, min(start + tile, s)) for start in range(0, s, tile)]
                for s in shape]
    blocks = tuple(tuple(combo) for combo in itertools.product(*per_axis))
    return TilePlan(shape=tuple(shape), tile=tile, halo=halo,
                    multiple=multiple, blocks=blocks)


def tile_candidates(shape: tuple[int, ...], multiple: int) -> list[int]:
    """Aligned tile sizes worth measuring for a spatial ``shape``:
    powers-of-two multiples of ``2**depth`` up to the untiled size."""
    max_tile = min(shape)
    candidates = []
    t = multiple
    while t < max_tile:
        candidates.append(t)
        t *= 2
    if max_tile >= multiple and max_tile % multiple == 0:
        candidates.append(max_tile)   # untiled: one block per axis
    return candidates


def autotune_tile(model, problem, resolution: int | None = None,
                  halo: int | None = None, executor=None) -> int:
    """Measure-and-persist the fastest tile size for this workload.

    Times one full :func:`tiled_predict` per candidate (powers of two
    from ``2**depth`` up to the untiled size) and records the winner in
    the host-fingerprinted measurement cache, keyed by everything the
    optimum depends on: dimensionality, resolution, network depth, halo
    width, and the executor shape (tile-grain parallelism shifts the
    optimum toward more, smaller tiles).  Subsequent calls are a cache
    hit — the measurement runs once per host per key.
    """
    log_nu, _, _ = prepare_batch_inputs(
        problem, np.zeros((1, problem.field.m)), resolution)
    shape = log_nu.shape[2:]
    net = model.net
    multiple = 2 ** net.depth
    if halo is None:
        halo = receptive_halo(model)
    kind = getattr(executor, "kind", "serial")
    workers = getattr(executor, "workers", 1)
    key = (f"{len(shape)}d:r{max(shape)}:d{net.depth}:h{halo}"
           f":{kind}x{workers}")
    record = _TILE_MEASUREMENTS.get(key)
    if record is None:
        omega = np.full(problem.field.m, 0.5)
        timings: dict[str, float] = {}
        best_tile, best_dt = None, float("inf")
        for tile in tile_candidates(shape, multiple):
            t0 = time.perf_counter()
            tiled_predict(model, problem, omega, resolution,
                          tile=tile, halo=halo, executor=executor)
            dt = time.perf_counter() - t0
            timings[str(tile)] = dt
            if dt < best_dt:
                best_tile, best_dt = tile, dt
        record = _TILE_MEASUREMENTS.setdefault(
            key, {"tile": int(best_tile), "seconds": timings})
    return int(record["tile"])


def _padded_block(x: np.ndarray, block, halo: int):
    """Halo-padded view of one tile plus the core slices into it."""
    padded = x
    offsets = []
    for d, (start, stop) in enumerate(block):
        padded, off = extract_padded_block(
            padded, axis=2 + d, start=start, stop=stop, halo=halo)
        offsets.append(off)
    core_src = tuple(
        slice(off, off + (stop - start))
        for off, (start, stop) in zip(offsets, block))
    return padded, core_src


def _forward_tile(net, buf: np.ndarray, core_src) -> np.ndarray:
    """One padded-tile forward; returns a fresh copy of the core region."""
    with no_grad():
        # .numpy() realizes the fused forward under the lazy backend.
        y = net(Tensor(buf)).numpy()
    return y[(slice(None), slice(None)) + core_src].copy()


# Per-process cache of unpickled networks, keyed by content digest.  Only
# populated inside ProcessExecutor workers; entries are tiny (the models
# are small — it is the *fields* that are megavoxel).
_PROC_NET_CACHE: dict[str, object] = {}


def _net_from_blob(version: str, blob: bytes):
    net = _PROC_NET_CACHE.get(version)
    if net is None:
        net = pickle.loads(blob)
        _PROC_NET_CACHE[version] = net
    return net


def _run_tile_task(task) -> np.ndarray:
    """Module-level tile task for process executors (must pickle)."""
    version, blob, buf, core_src = task
    return _forward_tile(_net_from_blob(version, blob), buf, core_src)


def tiled_forward(net, x: np.ndarray, plan: TilePlan,
                  out_channels: int = 1, executor=None,
                  net_ref: tuple[str, bytes] | None = None,
                  tracer=None, trace_parent=None) -> np.ndarray:
    """Run ``net`` (a spatially local module in eval mode) over halo-padded
    tiles of ``x`` (shape (N, C, *spatial)) and stitch the full output.

    The caller is responsible for eval mode; this function only manages
    tiling, scratch buffers, stitching and — when ``executor`` is a
    parallel :class:`~repro.serve.executor.Executor` — the fan-out of
    independent tiles across its workers.

    ``net_ref`` is an optional ``(version, pickled net bytes)`` pair for
    the process-executor path: a long-running caller (the prediction
    server) serializes the network once per content version and replays
    the cached blob on every call, instead of paying a fresh
    ``pickle.dumps(net)`` per forward.  Without it the blob is built
    here (one pickle per call — fine for one-shot CLI use).

    ``tracer``/``trace_parent`` (optional telemetry) emit one
    "tile.compute" span per tile on the sequential and thread paths and
    one "tile.wave" span per dispatch wave on the process path (the
    parent cannot time inside a child process).
    """
    if x.shape[2:] != plan.shape:
        raise ValueError(
            f"input spatial shape {x.shape[2:]} != plan shape {plan.shape}")
    out = np.empty((x.shape[0], out_channels) + plan.shape, dtype=x.dtype)
    kind = getattr(executor, "kind", "serial")
    parallel = (executor is not None and kind != "serial"
                and executor.workers > 1 and plan.num_tiles > 1)
    core_dsts = [tuple(slice(start, stop) for start, stop in block)
                 for block in plan.blocks]

    if not parallel:
        pool = get_pool()
        for i, (block, core_dst) in enumerate(zip(plan.blocks, core_dsts)):
            span = (tracer.start("tile.compute", parent=trace_parent, tile=i)
                    if tracer is not None else None)
            padded, core_src = _padded_block(x, block, plan.halo)
            # Pooled contiguous scratch: the slicing above yields a view.
            buf = pool.acquire(padded.shape, dtype=padded.dtype)
            np.copyto(buf, padded)
            try:
                core = _forward_tile(net, buf, core_src)
            finally:
                pool.release(buf)
                if span is not None:
                    span.finish()
            out[(slice(None), slice(None)) + core_dst] = core
    elif kind == "process":
        if net_ref is not None:
            version, blob = net_ref
        else:
            blob = pickle.dumps(net)
            version = hashlib.sha1(blob).hexdigest()[:12]
        # Dispatch in bounded waves so the parent never materializes
        # contiguous copies of every padded tile at once — per wave it
        # holds ~2 tiles per worker, preserving the bounded-memory point
        # of tiling on exactly the megavoxel grids it exists for.
        wave = max(1, 2 * executor.workers)
        for w0 in range(0, plan.num_tiles, wave):
            span = (tracer.start("tile.wave", parent=trace_parent,
                                 first=w0,
                                 count=min(wave, plan.num_tiles - w0))
                    if tracer is not None else None)
            tasks = []
            for block in plan.blocks[w0:w0 + wave]:
                padded, core_src = _padded_block(x, block, plan.halo)
                # Contiguous copy: a view pickles its whole base.
                tasks.append((version, blob,
                              np.ascontiguousarray(padded), core_src))
            cores = executor.map(_run_tile_task, tasks)
            for core_dst, core in zip(core_dsts[w0:w0 + wave], cores):
                out[(slice(None), slice(None)) + core_dst] = core
            if span is not None:
                span.finish()
    else:  # thread executor: share the model, pool scratch per task

        def run(indexed_block) -> np.ndarray:
            i, block = indexed_block
            span = (tracer.start("tile.compute", parent=trace_parent, tile=i)
                    if tracer is not None else None)
            padded, core_src = _padded_block(x, block, plan.halo)
            pool = get_pool()
            buf = pool.acquire(padded.shape, dtype=padded.dtype)
            np.copyto(buf, padded)
            try:
                return _forward_tile(net, buf, core_src)
            finally:
                pool.release(buf)
                if span is not None:
                    span.finish()

        cores = executor.map(run, list(enumerate(plan.blocks)))
        for core_dst, core in zip(core_dsts, cores):
            out[(slice(None), slice(None)) + core_dst] = core
    return out


def stream_tiled_forward(net, x: np.ndarray, plan: TilePlan,
                         executor=None,
                         net_ref: tuple[str, bytes] | None = None,
                         tiles=None):
    """Stream tile cores as they complete instead of stitching them.

    Yields ``(tile_index, core_slices, core)`` records where
    ``tile_index`` is the tile's position in ``plan.blocks`` (a stable
    identity independent of completion order), ``core_slices`` is the
    spatial destination ``tuple[slice, ...]`` into the full field, and
    ``core`` is a fresh ``(N, C, *core_shape)`` array.  Assigning every
    core via ``out[(slice(None), slice(None)) + core_slices] = core``
    reproduces :func:`tiled_forward` bitwise — the per-tile compute is
    the same code path; only delivery order differs.

    ``tiles`` optionally restricts the stream to a subset of tile
    indices (e.g. a fleet resuming a stream on a replacement replica
    skips tiles the consumer already holds).
    """
    if x.shape[2:] != plan.shape:
        raise ValueError(
            f"input spatial shape {x.shape[2:]} != plan shape {plan.shape}")
    if tiles is None:
        indices = list(range(plan.num_tiles))
    else:
        indices = [int(t) for t in tiles]
        for t in indices:
            if not 0 <= t < plan.num_tiles:
                raise ValueError(
                    f"tile index {t} out of range for {plan.num_tiles} tiles")
    core_dsts = {i: tuple(slice(start, stop) for start, stop in plan.blocks[i])
                 for i in indices}
    kind = getattr(executor, "kind", "serial")
    parallel = (executor is not None and kind != "serial"
                and executor.workers > 1 and len(indices) > 1)

    if not parallel:
        pool = get_pool()
        for i in indices:
            padded, core_src = _padded_block(x, plan.blocks[i], plan.halo)
            buf = pool.acquire(padded.shape, dtype=padded.dtype)
            np.copyto(buf, padded)
            try:
                core = _forward_tile(net, buf, core_src)
            finally:
                pool.release(buf)
            yield i, core_dsts[i], core
    elif kind == "process":
        if net_ref is not None:
            version, blob = net_ref
        else:
            blob = pickle.dumps(net)
            version = hashlib.sha1(blob).hexdigest()[:12]
        # Bounded waves, as in tiled_forward: the parent holds contiguous
        # copies of ~2 tiles per worker at a time.  Within a wave results
        # stream out in completion order.
        wave = max(1, 2 * executor.workers)
        for w0 in range(0, len(indices), wave):
            wave_ids = indices[w0:w0 + wave]
            tasks = []
            for i in wave_ids:
                padded, core_src = _padded_block(x, plan.blocks[i], plan.halo)
                tasks.append((version, blob,
                              np.ascontiguousarray(padded), core_src))
            for pos, core in executor.imap_unordered(_run_tile_task, tasks):
                i = wave_ids[pos]
                yield i, core_dsts[i], core
    else:  # thread executor: share the model, pool scratch per task

        def run(i) -> np.ndarray:
            padded, core_src = _padded_block(x, plan.blocks[i], plan.halo)
            pool = get_pool()
            buf = pool.acquire(padded.shape, dtype=padded.dtype)
            np.copyto(buf, padded)
            try:
                return _forward_tile(net, buf, core_src)
            finally:
                pool.release(buf)

        for pos, core in executor.imap_unordered(run, indices):
            i = indices[pos]
            yield i, core_dsts[i], core


def stream_tiled_predict(model, problem, omegas: np.ndarray,
                         resolution: int | None = None,
                         tile: "int | str | None" = None,
                         halo: int | None = None, executor=None,
                         net_ref: tuple[str, bytes] | None = None,
                         tiles=None):
    """Streaming counterpart of :func:`tiled_predict`.

    Yields ``(tile_index, core_slices, core)`` records where ``core`` is
    the *masked* prediction for that core region, shape
    ``(B, *core_shape)``, and ``core_slices`` indexes the spatial axes of
    the assembled ``(B, *grid.shape)`` field.  Dirichlet masking
    (Algorithm 1 line 8) is pointwise, so masking each core is bitwise
    identical to masking the stitched field — assembling every record
    reproduces :func:`tiled_predict` exactly.

    The generator holds the model in eval mode only while it is being
    consumed; ``tiles`` restricts the stream to a subset of tile indices
    for mid-stream resume.
    """
    if tile == "autotune":
        tile = autotune_tile(model, problem, resolution, halo, executor)
    log_nu, chi_int, u_bc = prepare_batch_inputs(problem, omegas, resolution)
    shape = log_nu.shape[2:]

    net = model.net
    multiple = 2 ** net.depth
    if halo is None:
        halo = receptive_halo(model)
    if tile is None:
        tile = max(multiple, min(shape))
    plan = plan_tiles(shape, tile, halo, multiple)

    was_training = model.training
    model.eval()
    try:
        for i, core_dst, core in stream_tiled_forward(
                net, log_nu, plan, executor=executor,
                net_ref=net_ref, tiles=tiles):
            mask = (slice(None), slice(None)) + core_dst
            yield i, core_dst, apply_bc_masks(
                core, chi_int[mask], u_bc[mask])
    finally:
        model.train(was_training)


def tiled_predict(model, problem, omegas: np.ndarray,
                  resolution: int | None = None,
                  tile: "int | str | None" = None,
                  halo: int | None = None, executor=None,
                  net_ref: tuple[str, bytes] | None = None,
                  tracer=None, trace_parent=None) -> np.ndarray:
    """Tiled counterpart of :func:`repro.core.inference.predict_batch`.

    Produces the same ``(B, *grid.shape)`` full-field predictions, but
    never materializes activations for more than one ``tile + 2*halo``
    block at a time (per worker).  With the default (receptive-field)
    halo the result matches the single-pass forward to float roundoff.
    ``executor`` fans independent tiles across a worker pool; the
    stitched field is identical to the sequential result.  ``net_ref``
    (``(version, pickled net)``) lets a serving caller reuse one
    serialization of the network across calls on the process path.
    ``tile="autotune"`` resolves the size through :func:`autotune_tile`
    (measured once per host/workload, persisted, then a cache hit).
    """
    if tile == "autotune":
        tile = autotune_tile(model, problem, resolution, halo, executor)
    log_nu, chi_int, u_bc = prepare_batch_inputs(problem, omegas, resolution)
    shape = log_nu.shape[2:]

    net = model.net
    multiple = 2 ** net.depth
    if halo is None:
        halo = receptive_halo(model)
    if tile is None:
        tile = max(multiple, min(shape))
    plan = plan_tiles(shape, tile, halo, multiple)

    was_training = model.training
    model.eval()
    try:
        u_net = tiled_forward(net, log_nu, plan, out_channels=1,
                              executor=executor, net_ref=net_ref,
                              tracer=tracer, trace_parent=trace_parent)
    finally:
        model.train(was_training)

    # Dirichlet masking (Algorithm 1 line 8) is pointwise, so applying it
    # to the stitched field is identical to applying it per tile.
    return apply_bc_masks(u_net, chi_int, u_bc)
