"""Model registry: named, versioned, validated serving entries.

A registry turns checkpoints on disk into live serving entries.  Each
entry pins the model together with its :class:`PoissonProblem` template,
the dtype/backend it was loaded under, and a content *version* (a hash
of the parameter bytes) that keys the result cache — reloading a
retrained checkpoint under the same name changes the version and thereby
invalidates every cached field automatically.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..backend import get_backend, get_default_dtype
from ..core.checkpoint import CheckpointError, load_checkpoint
from ..core.mgdiffnet import MGDiffNet
from ..core.problem import PoissonProblem

__all__ = ["RegistryError", "ModelEntry", "ModelRegistry", "state_version"]

_ARCH_KEYS = ("ndim", "base_filters", "depth", "resolution")


class RegistryError(RuntimeError):
    """A checkpoint could not be registered (bad path, metadata or state)."""


def state_version(model) -> str:
    """Content hash of the model parameters (cache-key component)."""
    digest = hashlib.sha1()
    for name, value in sorted(model.state_dict().items()):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(value).tobytes())
    return digest.hexdigest()[:12]


@dataclass
class ModelEntry:
    """One servable model: network + problem template + provenance."""

    name: str
    model: MGDiffNet
    problem: PoissonProblem
    version: str
    path: Path | None = None
    meta: dict[str, Any] = field(default_factory=dict)
    dtype: str = "float32"
    backend: str = "numpy"

    def problem_signature(self) -> tuple:
        """Hashable identity of the PDE family this model was trained on."""
        p = self.problem
        return (p.ndim, p.resolution, tuple(p.field.a), tuple(p.omega_range))

    def __repr__(self) -> str:
        src = self.path.name if self.path else "<in-memory>"
        return (f"ModelEntry({self.name!r}, version={self.version}, "
                f"{self.problem.ndim}d r={self.problem.resolution}, "
                f"from {src})")


class ModelRegistry:
    """Thread-safe name -> :class:`ModelEntry` map for the server.

    ``load`` reconstructs the architecture from checkpoint metadata
    (``ndim``/``base_filters``/``depth``/``resolution`` as written by
    ``repro train``), restores the weights, smoke-tests one forward pass
    at the smallest legal resolution, and computes the content version.
    Any failure is surfaced as :class:`RegistryError` carrying the
    checkpoint path.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, ModelEntry] = {}

    # ------------------------------------------------------------------ #
    def load(self, name: str, path: str | Path,
             validate: bool = True) -> ModelEntry:
        """Load a checkpoint written by ``repro train`` under ``name``."""
        path = Path(path)
        if not path.exists():
            raise RegistryError(f"checkpoint {path} does not exist")
        try:
            with np.load(path, allow_pickle=False) as data:
                meta = {k.split("::", 1)[1]: data[k].item()
                        for k in data.files if k.startswith("meta::")
                        and data[k].ndim == 0}
        except (OSError, ValueError) as exc:
            raise RegistryError(f"checkpoint {path} is not readable: {exc}"
                                ) from exc
        absent = [k for k in _ARCH_KEYS if k not in meta]
        if absent:
            raise RegistryError(
                f"checkpoint {path} lacks architecture metadata {absent}; "
                "re-save it with repro train --checkpoint (which records "
                "ndim/base_filters/depth/resolution)")
        model = MGDiffNet(ndim=int(meta["ndim"]),
                          base_filters=int(meta["base_filters"]),
                          depth=int(meta["depth"]), rng=0)
        try:
            load_checkpoint(path, model)
        except CheckpointError as exc:
            raise RegistryError(str(exc)) from exc
        problem = PoissonProblem(int(meta["ndim"]), int(meta["resolution"]))
        entry = self._make_entry(name, model, problem, path, meta)
        if validate:
            # Validate *before* registering: a checkpoint that fails its
            # smoke test must never be servable.
            self._smoke_test(entry)
        with self._lock:
            self._entries[name] = entry
        return entry

    def register_model(self, name: str, model: MGDiffNet,
                       problem: PoissonProblem, path: Path | None = None,
                       meta: dict | None = None,
                       version: str | None = None) -> ModelEntry:
        """Register an in-memory model (tests, benchmarks, hot swaps).

        ``version`` lets a caller that already hashed the state dict
        (the fleet hashes once to route, then registers on R replicas)
        skip recomputing it; ``None`` hashes here.
        """
        entry = self._make_entry(name, model, problem, path, meta, version)
        with self._lock:
            self._entries[name] = entry
        return entry

    @staticmethod
    def _make_entry(name: str, model: MGDiffNet, problem: PoissonProblem,
                    path: Path | None, meta: dict | None,
                    version: str | None = None) -> ModelEntry:
        # Serving entries are pinned to eval mode: concurrent server
        # workers share the model, and the inference helpers' transient
        # eval()/train(was_training) toggles are only race-free when
        # `training` is already (and stays) False — otherwise one
        # worker's restore could flip BatchNorm to training mode mid-
        # forward in another, corrupting running statistics.
        model.eval()
        return ModelEntry(
            name=name, model=model, problem=problem,
            version=version or state_version(model), path=path,
            meta=dict(meta or {}),
            dtype=np.dtype(get_default_dtype()).name,
            backend=get_backend().name)

    @staticmethod
    def _smoke_test(entry: ModelEntry) -> None:
        """One tiny forward pass: catches broken weights before serving."""
        r = max(entry.model.min_resolution, 8)
        omega = np.zeros(entry.problem.field.m)
        try:
            u = entry.model.predict(entry.problem, omega, resolution=r)
        except Exception as exc:  # pragma: no cover - defensive
            raise RegistryError(
                f"checkpoint {entry.path}: validation forward pass failed "
                f"at r={r}: {exc}") from exc
        if not np.all(np.isfinite(u)):
            raise RegistryError(
                f"checkpoint {entry.path}: validation forward pass "
                f"produced non-finite values")

    # ------------------------------------------------------------------ #
    def get(self, name: str) -> ModelEntry:
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                known = sorted(self._entries)
                raise RegistryError(
                    f"no model named {name!r} registered; available: "
                    f"{known}") from None

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._entries))

    def entries(self) -> tuple[ModelEntry, ...]:
        """Snapshot of all entries, name-sorted (fleet probes / pruning)."""
        with self._lock:
            return tuple(self._entries[name]
                         for name in sorted(self._entries))

    def unregister(self, name: str) -> None:
        with self._lock:
            self._entries.pop(name, None)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return f"ModelRegistry({list(self.names())})"
