"""Size-bounded LRU result cache for the prediction server.

Serving workloads repeat: design loops and parameter sweeps re-query the
same ω (or ω within float noise of each other), and a solved full field
is exactly reusable.  Keys are built from the *model version* (so a
reloaded checkpoint never serves stale fields), the *problem signature*
(dimension, resolution, diffusivity family, parameter box) and a
*quantized* ω — two queries within the quantization step share one entry.

The cache is bounded in bytes, not entries: one 3D megavoxel field is
worth thousands of 2D ones, so counting entries would make the bound
meaningless across workloads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["CacheStats", "LRUCache", "quantize_omega", "result_key"]


def quantize_omega(omega: np.ndarray, step: float = 1e-6) -> tuple[float, ...]:
    """Snap ω to a lattice of spacing ``step`` (hashable tuple)."""
    q = np.round(np.asarray(omega, dtype=np.float64) / step) * step
    # Normalize -0.0 so that -1e-9 and +1e-9 collapse to the same key.
    q = q + 0.0
    return tuple(float(v) for v in q)


def result_key(model_version: str, problem_sig: tuple,
               omega: np.ndarray, resolution: int,
               step: float = 1e-6) -> tuple:
    """Canonical cache key for one prediction request."""
    return (model_version, problem_sig, int(resolution),
            quantize_omega(omega, step))


@dataclass
class CacheStats:
    """Cumulative accounting of one :class:`LRUCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_cached: int = 0
    entries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """Thread-safe least-recently-used cache bounded by total bytes.

    Values are NumPy arrays; stored copies are marked read-only so a
    caller mutating a served result cannot corrupt later cache hits.
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024) -> None:
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self.stats = CacheStats()

    def get(self, key: tuple) -> np.ndarray | None:
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: tuple, value: np.ndarray) -> np.ndarray | None:
        """Admit a result; returns the stored read-only copy, or ``None``
        when the value exceeds the whole budget (admitting it would just
        evict everything and then itself be evicted next)."""
        if value.nbytes > self.max_bytes:
            return None
        value = np.ascontiguousarray(value).copy()
        value.flags.writeable = False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.stats.bytes_cached -= old.nbytes
            self._entries[key] = value
            self.stats.bytes_cached += value.nbytes
            while self.stats.bytes_cached > self.max_bytes:
                _, dropped = self._entries.popitem(last=False)
                self.stats.bytes_cached -= dropped.nbytes
                self.stats.evictions += 1
            self.stats.entries = len(self._entries)
        return value

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats.bytes_cached = 0
            self.stats.entries = 0

    def __repr__(self) -> str:
        s = self.stats
        return (f"LRUCache(entries={len(self)}, "
                f"bytes={s.bytes_cached}/{self.max_bytes}, "
                f"hit_rate={s.hit_rate:.2f})")
