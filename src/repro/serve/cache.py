"""Size-bounded LRU result cache for the prediction server.

Serving workloads repeat: design loops and parameter sweeps re-query the
same ω (or ω within float noise of each other), and a solved full field
is exactly reusable.  Keys are built from the *model version* (so a
reloaded checkpoint never serves stale fields), the *problem signature*
(dimension, resolution, diffusivity family, parameter box) and a
*quantized* ω — two queries within the quantization step share one entry.

The cache is bounded in bytes, not entries: one 3D megavoxel field is
worth thousands of 2D ones, so counting entries would make the bound
meaningless across workloads.

**Disk spill** (``spill_dir``): every admitted entry is also written as
one ``.npz`` file, and a memory miss falls through to disk before
recomputing — so a server restart keeps its hot set.  File names embed
the model version and a digest of the full key: a reloaded (retrained)
checkpoint changes the version, changes every key, and thereby leaves
stale files unreachable (self-invalidation; ``prune_spill`` deletes the
orphans of versions no longer served).

**Spill budget** (``spill_max_bytes``): the disk tier is LRU-bounded
like the memory tier — reads and rewrites refresh a file's recency
(mirrored to its mtime, so the order survives restarts), writes evict
the least-recently-used files until the total fits, and a value larger
than the whole budget is not written at all (admitting it would wipe the
tier just to be evicted next).  ``None`` keeps the pre-budget behavior:
unbounded disk, pruned only by version.

**Shared spill** (``shared_spill=True``): several cache instances —
across threads *and processes* — share one directory and one budget,
coordinating every write/touch through the cross-process
:class:`~repro.serve.spill_ledger.SpillLedger` instead of per-instance
books.  Entries deduplicate (same key => same file name), and an
eviction performed by one instance is reflected in the books of
whichever instance observes it next.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["CacheStats", "LRUCache", "key_digest", "quantize_omega",
           "result_key", "spill_file_name"]


def key_digest(key: tuple) -> str:
    """Stable hex digest of one cache key.

    ``repr`` of the key tuple is stable (shortest-round-trip floats).
    Shared by spill file names and the keyed serving errors, so an
    operator can correlate a rejection in a log line with the exact
    cache/spill entry it names.
    """
    return hashlib.sha1(repr(key).encode()).hexdigest()[:20]


def quantize_omega(omega: np.ndarray, step: float = 1e-6) -> tuple[float, ...]:
    """Snap ω to a lattice of spacing ``step`` (hashable tuple)."""
    q = np.round(np.asarray(omega, dtype=np.float64) / step) * step
    # Normalize -0.0 so that -1e-9 and +1e-9 collapse to the same key.
    q = q + 0.0
    return tuple(float(v) for v in q)


def result_key(model_version: str, problem_sig: tuple,
               omega: np.ndarray, resolution: int,
               step: float = 1e-6) -> tuple:
    """Canonical cache key for one prediction request."""
    return (model_version, problem_sig, int(resolution),
            quantize_omega(omega, step))


# Spill recency is persisted via file mtimes (restart re-seeds the LRU
# order from an mtime sort).  A bare ``os.utime(path)`` stamps the
# *current clock*, whose effective resolution on some filesystems is a
# whole second — two files touched inside one tick tie, and the restart
# sort breaks the tie by directory order, i.e. arbitrarily.  Stamping an
# explicit, process-wide strictly-increasing nanosecond count makes the
# persisted order total: later touch ⇒ strictly larger mtime, always.
_touch_lock = threading.Lock()
_last_touch_ns = 0


def _touch_monotonic(path: Path | str) -> None:
    """``os.utime`` with a strictly increasing nanosecond timestamp."""
    global _last_touch_ns
    with _touch_lock:
        _last_touch_ns = max(time.time_ns(), _last_touch_ns + 1)
        ns = _last_touch_ns
    os.utime(path, ns=(ns, ns))


def spill_file_name(key: tuple) -> str:
    """Deterministic npz file name for one cache key.

    The model version prefix keeps stale generations visually — and
    prunably — distinct.
    """
    version = str(key[0]) if key else "v"
    return f"{version}-{key_digest(key)}.npz"


@dataclass
class CacheStats:
    """Cumulative accounting of one :class:`LRUCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_cached: int = 0
    entries: int = 0
    spill_hits: int = 0
    spill_writes: int = 0
    spill_bytes: int = 0
    spill_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """Thread-safe least-recently-used cache bounded by total bytes.

    Values are NumPy arrays; stored copies are marked read-only so a
    caller mutating a served result cannot corrupt later cache hits.
    With ``spill_dir`` the cache is two-tiered: memory (byte-bounded LRU)
    over disk (one npz per entry, unbounded, restart-persistent).
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024,
                 spill_dir: str | os.PathLike | None = None,
                 spill_max_bytes: int | None = None,
                 shared_spill: bool = False) -> None:
        self.max_bytes = int(max_bytes)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.spill_max_bytes = (int(spill_max_bytes)
                                if spill_max_bytes is not None else None)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        # LRU accounting of the disk tier: file name -> bytes, ordered
        # least- to most-recently used.  Seeded from a directory scan in
        # mtime order so the recency ranking survives restarts (reads
        # mirror their touch to the file's mtime).
        self._spill_files: OrderedDict[str, int] = OrderedDict()
        # With shared_spill the budget is enforced by the cross-process
        # ledger, not these books (which then only track what *this*
        # instance has seen).  A ledger without a budget has nothing to
        # coordinate, so spill_max_bytes is required: silently degrading
        # to per-instance accounting would leave multiple writers on one
        # directory with no coordination at all.
        self._ledger = None
        if shared_spill and self.spill_dir is not None:
            if self.spill_max_bytes is None:
                raise ValueError(
                    "shared_spill=True requires spill_max_bytes: the "
                    "cross-process ledger coordinates a byte budget, and "
                    "without one shards would share the spill directory "
                    "with uncoordinated per-instance accounting")
            from .spill_ledger import SpillLedger
            self._ledger = SpillLedger(self.spill_dir, self.spill_max_bytes)
        self.stats = CacheStats()
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)
            # st_mtime_ns, not st_mtime: the float-seconds view rounds
            # away the nanosecond stamps _touch_monotonic writes, which
            # would reintroduce exactly the ties it exists to break.
            for path in sorted(self.spill_dir.glob("*.npz"),
                               key=lambda p: p.stat().st_mtime_ns):
                self._spill_files[path.name] = path.stat().st_size
            if self._ledger is not None:
                evicted, total = self._ledger.ensure_budget()
                for name, _ in evicted:
                    self._spill_files.pop(name, None)
                self.stats.spill_bytes = total
            else:
                self.stats.spill_bytes = sum(self._spill_files.values())
                self._enforce_spill_budget()

    def get(self, key: tuple) -> np.ndarray | None:
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return value
        value = self._load_spilled(key)
        if value is not None:
            with self._lock:
                self.stats.hits += 1
                self.stats.spill_hits += 1
            if value.nbytes <= self.max_bytes:
                # Promote to memory — same admission rule as put(): an
                # oversized entry would evict the whole hot set just to
                # be evicted itself.
                self._admit(key, value)
            return value
        with self._lock:
            self.stats.misses += 1
        return None

    def put(self, key: tuple, value: np.ndarray) -> np.ndarray | None:
        """Admit a result; returns the stored read-only copy, or ``None``
        when the value exceeds the whole memory budget (admitting it
        would just evict everything and then itself be evicted next).
        Oversized values still spill to disk when a spill tier exists."""
        stored = None
        if value.nbytes <= self.max_bytes:
            stored = np.ascontiguousarray(value).copy()
            stored.flags.writeable = False
            self._admit(key, stored)
        self._write_spilled(key, stored if stored is not None else value)
        return stored

    def _admit(self, key: tuple, value: np.ndarray) -> None:
        """Insert a read-only array into the memory tier, evicting LRU."""
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.stats.bytes_cached -= old.nbytes
            self._entries[key] = value
            self.stats.bytes_cached += value.nbytes
            while self.stats.bytes_cached > self.max_bytes:
                _, dropped = self._entries.popitem(last=False)
                self.stats.bytes_cached -= dropped.nbytes
                self.stats.evictions += 1
            self.stats.entries = len(self._entries)

    # ------------------------------------------------------------------ #
    # Disk tier
    # ------------------------------------------------------------------ #
    def _spill_path(self, key: tuple) -> Path | None:
        if self.spill_dir is None:
            return None
        return self.spill_dir / spill_file_name(key)

    def _write_spilled(self, key: tuple, value: np.ndarray) -> None:
        path = self._spill_path(key)
        if path is None:
            return
        if path.exists():
            # Rewriting an existing entry is a use: refresh its recency.
            self._touch_spill(path)
            return
        if (self.spill_max_bytes is not None
                and value.nbytes > self.spill_max_bytes):
            # Same admission rule as the memory tier: a value larger
            # than the whole budget would wipe the tier just to be
            # evicted itself next.
            return
        # Atomic publish: a concurrent reader must never see a torn
        # file.  The tmp name is writer-unique so two processes/threads
        # racing on one key cannot interleave writes into a shared tmp.
        tmp = path.with_suffix(
            f".{os.getpid()}.{threading.get_ident()}.tmp.npz")
        try:
            np.savez(tmp, value=np.ascontiguousarray(value))
            os.replace(tmp, path)
            # A fresh write is this entry's first use: stamp it into the
            # same strictly-increasing recency order as touches, so two
            # writes landing inside one filesystem-mtime tick cannot tie.
            _touch_monotonic(path)
            size = path.stat().st_size
        except OSError:
            tmp.unlink(missing_ok=True)
            return
        with self._lock:
            self.stats.spill_writes += 1
            self._spill_files[path.name] = size
            if self._ledger is not None:
                self._ledger_use(path.name, size)
            else:
                self.stats.spill_bytes += size
                self._enforce_spill_budget()

    def _touch_spill(self, path: Path) -> None:
        """Move a spill file to most-recently-used (persisted via mtime)."""
        try:
            _touch_monotonic(path)
            size = path.stat().st_size
        except OSError:
            return
        with self._lock:
            # (Re)register at most-recently-used; incremental accounting
            # keeps spill hits O(1).  A file written by another instance
            # sharing the directory enters this instance's books on
            # first touch (old is None).
            old = self._spill_files.pop(path.name, None)
            self._spill_files[path.name] = size
            if self._ledger is not None:
                self._ledger_use(path.name, size)
            else:
                self.stats.spill_bytes += size - (old or 0)
                self._enforce_spill_budget()

    def _ledger_use(self, name: str, size: int) -> None:
        """Route a write/touch through the shared ledger (lock held).

        The ledger evicts over-budget files itself — including files
        other instances wrote — and reports the directory's true byte
        total, which replaces this instance's incremental count.
        """
        evicted, total = self._ledger.record_use(name, size)
        for evicted_name, _ in evicted:
            self._spill_files.pop(evicted_name, None)
            self.stats.spill_evictions += 1
        self.stats.spill_bytes = total

    def _enforce_spill_budget(self) -> None:
        """Evict least-recently-used spill files over budget (lock held)."""
        if self.spill_max_bytes is None or self.spill_dir is None:
            return
        while self.stats.spill_bytes > self.spill_max_bytes:
            name, size = self._spill_files.popitem(last=False)
            (self.spill_dir / name).unlink(missing_ok=True)
            self.stats.spill_bytes -= size
            self.stats.spill_evictions += 1

    def _forget_spill(self, path: Path) -> None:
        with self._lock:
            size = self._spill_files.pop(path.name, None)
            if self._ledger is not None:
                self.stats.spill_bytes = self._ledger.remove(path.name)
            elif size is not None:
                self.stats.spill_bytes -= size

    def _load_spilled(self, key: tuple) -> np.ndarray | None:
        path = self._spill_path(key)
        if path is None or not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                value = data["value"]
        except (OSError, ValueError, KeyError):
            # Torn or foreign file: drop it so it cannot shadow recompute.
            path.unlink(missing_ok=True)
            self._forget_spill(path)
            return None
        value.flags.writeable = False
        self._touch_spill(path)
        return value

    def prune_spill(self, live_versions) -> int:
        """Delete spilled entries whose model version is no longer served;
        returns the number of files removed."""
        if self.spill_dir is None:
            return 0
        live = {str(v) for v in live_versions}
        removed = 0
        for path in self.spill_dir.glob("*.npz"):
            version = path.name.rsplit("-", 1)[0]
            if version not in live:
                path.unlink(missing_ok=True)
                self._forget_spill(path)
                removed += 1
        return removed

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats.bytes_cached = 0
            self.stats.entries = 0

    def __repr__(self) -> str:
        s = self.stats
        return (f"LRUCache(entries={len(self)}, "
                f"bytes={s.bytes_cached}/{self.max_bytes}, "
                f"hit_rate={s.hit_rate:.2f})")
