"""Dynamic micro-batching: coalesce queued requests into fused forwards.

A single ω query is a (1, 1, *grid) forward; the GEMMs inside are far
from their throughput regime.  Batching B compatible requests into one
(B, 1, *grid) forward amortizes planning, im2col and Python dispatch —
the classic dynamic-batching trade of a little latency (bounded by
``max_wait_ms``) for a lot of throughput.

The batcher is policy only: it owns no threads.  A server worker calls
``collect`` to drain one micro-batch and then groups it into fusable
runs (same model version and resolution) with ``group_compatible`` —
coalescing never changes results because eval-mode inference is
per-sample independent (verified by the determinism tests).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["PredictRequest", "MicroBatcher"]


@dataclass
class PredictRequest:
    """One queued prediction request."""

    model_name: str
    omega: np.ndarray
    resolution: int
    future: Any  # concurrent.futures.Future
    enqueued_at: float = field(default_factory=time.perf_counter)
    key: tuple | None = None  # cache/dedup key, stamped by submit()

    def group_key(self) -> tuple:
        """Requests sharing this key may run in one fused forward."""
        return (self.model_name, self.resolution)


class MicroBatcher:
    """Coalescing policy over a :class:`queue.Queue` of requests.

    Parameters
    ----------
    max_batch:
        Upper bound on requests fused into one forward.
    max_wait_ms:
        How long to hold the *first* request of a batch while waiting for
        companions.  0 disables coalescing (every request runs alone).
    """

    def __init__(self, max_batch: int = 8, max_wait_ms: float = 2.0) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)

    def collect(self, source: "queue.Queue[PredictRequest]",
                stop: threading.Event | None = None,
                poll_s: float = 0.05) -> list[PredictRequest]:
        """Block for the next request, then drain companions.

        Returns ``[]`` only when ``stop`` is set and the queue is empty —
        the worker's signal to exit.
        """
        first: PredictRequest | None = None
        while first is None:
            try:
                first = source.get(timeout=poll_s)
            except queue.Empty:
                if stop is not None and stop.is_set():
                    return []
        batch = [first]
        deadline = time.perf_counter() + self.max_wait_ms / 1e3
        while len(batch) < self.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                # Deadline passed: take whatever is already queued, but
                # do not wait for more.
                try:
                    batch.append(source.get_nowait())
                    continue
                except queue.Empty:
                    break
            try:
                batch.append(source.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    @staticmethod
    def group_compatible(batch: list[PredictRequest]
                         ) -> list[list[PredictRequest]]:
        """Split a drained batch into fusable runs, preserving order."""
        groups: dict[tuple, list[PredictRequest]] = {}
        order: list[tuple] = []
        for req in batch:
            key = req.group_key()
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(req)
        return [groups[k] for k in order]
