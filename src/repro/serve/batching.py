"""Dynamic micro-batching: coalesce queued requests into fused forwards.

A single ω query is a (1, 1, *grid) forward; the GEMMs inside are far
from their throughput regime.  Batching B compatible requests into one
(B, 1, *grid) forward amortizes planning, im2col and Python dispatch —
the classic dynamic-batching trade of a little latency (bounded by
``max_wait_ms``) for a lot of throughput.

The batcher is policy only: it owns no threads.  A server worker calls
``collect`` to drain one micro-batch and then groups it into fusable
runs (same model version and resolution) with ``group_compatible`` —
coalescing never changes results because eval-mode inference is
per-sample independent (verified by the determinism tests).

Scheduling discipline (the seam PR 2 left open, filled here):

* **Priorities** — :class:`RequestQueue` is a heap, not a FIFO: requests
  dequeue highest ``priority`` first, FIFO within a priority level, so
  a saturated server never head-of-line-blocks an interactive query
  behind a bulk sweep.
* **Deadlines** — a request carrying ``expires_at`` that is already past
  due when drained is handed to the caller's ``on_expired`` hook instead
  of a batch slot; the server fails it with a keyed
  :class:`~repro.serve.errors.DeadlineExceeded` *before* it wastes a
  fused forward.
* **Backpressure** — the queue is byte-cheap but not free: bounding it
  (``RequestQueue(maxsize=...)``) turns overload into synchronous
  ``queue.Full`` at ``put`` time, which the server surfaces as a keyed
  ``ServerOverloaded`` rejection.
* **Priority aging** — strict priority can starve the bulk lane under
  sustained interactive load.  With ``aging_s`` set the heap is keyed
  by *virtual start time* ``enqueued_at - priority * aging_s``: a
  priority-p request behaves like a priority-0 request enqueued
  ``p * aging_s`` earlier, so a bulk request that has waited longer
  than ``Δpriority * aging_s`` dequeues ahead of a fresher interactive
  one.  Low-priority wait behind a saturated high lane is thereby
  bounded by ``max_priority * aging_s`` plus one drain, instead of
  unbounded.
* **Deadline-aware hold shrink (EDF)** — ``max_wait_ms`` trades batch
  size for latency under the assumption that every request can afford
  the hold.  A request whose deadline expires *inside* the hold window
  cannot: it would be coalesced straight into ``DeadlineExceeded``.
  ``collect`` therefore shrinks the hold to the earliest ``expires_at``
  among the batch's members — earliest-deadline-first applied to the
  coalescing window — so a tight-deadline request dispatches as soon as
  its slack runs out while relaxed traffic still enjoys the full wait.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = ["PredictRequest", "RequestQueue", "MicroBatcher"]


@dataclass
class PredictRequest:
    """One queued prediction request."""

    model_name: str
    omega: np.ndarray
    resolution: int
    future: Any  # concurrent.futures.Future
    enqueued_at: float = field(default_factory=time.perf_counter)
    key: tuple | None = None  # cache/dedup key, stamped by submit()
    priority: int = 0         # higher dequeues first under saturation
    deadline_s: float | None = None   # latency budget granted at submit
    expires_at: float | None = None   # absolute perf_counter expiry
    tenant: str | None = None         # admission-control accounting key
    stream: Any = None        # TileStream sink: set iff this request
    #                           streams tile records instead of resolving
    #                           one fused field (see server.submit_stream)
    trace: Any = None         # telemetry context token: the request's
    #                           root span (or None when tracing is off)
    trace_queue: Any = None   # open "queue.wait" child span, finished
    #                           when the request leaves the queue

    def group_key(self) -> tuple:
        """Requests sharing this key may run in one fused forward.

        A streaming request can never fuse — its result is a sequence of
        tile records, not a slot in a stacked batch — so it gets a key
        unique to itself and always forms a singleton group.
        """
        if self.stream is not None:
            return (self.model_name, self.resolution, id(self))
        return (self.model_name, self.resolution)

    def expired(self, now: float | None = None) -> bool:
        """True when the deadline has passed (never, without one)."""
        if self.expires_at is None:
            return False
        return (time.perf_counter() if now is None else now) > self.expires_at


class RequestQueue(queue.PriorityQueue):
    """Priority-ordered, optionally bounded queue of requests.

    A drop-in for the ``queue.Queue`` the batcher drains — same ``put``/
    ``get``/``task_done``/``join`` surface — but backed by a heap keyed
    ``(-priority, sequence)``: higher priority dequeues first, and the
    monotone sequence number keeps FIFO order (and heap stability) within
    one priority level.  ``maxsize > 0`` bounds pending requests; a
    non-blocking ``put`` on a full queue raises ``queue.Full``, which is
    the backpressure signal the server turns into ``ServerOverloaded``.

    ``aging_s`` switches the key to the virtual start time
    ``enqueued_at - priority * aging_s`` (heap-safe because it is fixed
    at ``put``): strict priority still wins between fresh requests, but
    a request that has waited ``Δpriority * aging_s`` overtakes — the
    anti-starvation bound.  ``None`` (default) keeps strict priority.
    """

    def __init__(self, maxsize: int = 0,
                 aging_s: float | None = None) -> None:
        super().__init__(maxsize)
        if aging_s is not None and aging_s <= 0:
            raise ValueError("aging_s must be positive (or None)")
        self.aging_s = aging_s
        self._seq = itertools.count()

    def _rank(self, request: PredictRequest) -> float:
        if self.aging_s is None:
            return -request.priority
        return request.enqueued_at - request.priority * self.aging_s

    def put(self, request: PredictRequest, block: bool = True,
            timeout: float | None = None) -> None:
        super().put((self._rank(request), next(self._seq), request),
                    block, timeout)

    def get(self, block: bool = True,
            timeout: float | None = None) -> PredictRequest:
        return super().get(block, timeout)[-1]


class MicroBatcher:
    """Coalescing policy over a queue of requests.

    Parameters
    ----------
    max_batch:
        Upper bound on requests fused into one forward.
    max_wait_ms:
        How long to hold the *first* request of a batch while waiting for
        companions.  0 disables coalescing (every request runs alone).
    """

    def __init__(self, max_batch: int = 8, max_wait_ms: float = 2.0) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.tracer = None  # telemetry seam: set by enable_telemetry

    def _admit(self, request: PredictRequest, batch: list[PredictRequest],
               source: "queue.Queue[PredictRequest]",
               on_expired: Callable[[PredictRequest], None] | None) -> None:
        """Route a drained request to the batch or the expiry hook.

        Expired requests never occupy a batch slot: they are consumed
        here (including the ``task_done`` their ``get`` owes the queue's
        drain accounting) so a saturated queue full of dead requests
        cannot starve the live ones behind them.
        """
        if on_expired is not None and request.expired():
            on_expired(request)
            if hasattr(source, "task_done"):
                source.task_done()
            return
        batch.append(request)

    def collect(self, source: "queue.Queue[PredictRequest]",
                stop: threading.Event | None = None,
                poll_s: float = 0.05,
                on_expired: Callable[[PredictRequest], None] | None = None,
                ) -> list[PredictRequest]:
        """Block for the next live request, then drain companions.

        With a :class:`RequestQueue` source the drain order is priority
        order.  ``on_expired`` receives every past-deadline request
        consumed during the drain (the caller resolves its future); the
        returned batch contains only live requests.  Returns ``[]`` only
        when ``stop`` is set and the queue is empty — the worker's signal
        to exit.

        The hold window is deadline-aware: a member whose ``expires_at``
        falls before the ``max_wait_ms`` deadline shrinks the hold to
        that expiry (EDF on the coalescing window), so holding for
        companions can never itself expire a request already drained.
        """
        batch: list[PredictRequest] = []
        while not batch:
            try:
                self._admit(source.get(timeout=poll_s), batch, source,
                            on_expired)
            except queue.Empty:
                if stop is not None and stop.is_set():
                    return []
        tracer = self.tracer
        span = None
        if tracer is not None:
            # The span starts when the first live member arrives — the
            # coalescing hold is the stage being measured, not the idle
            # wait for traffic to exist at all.
            span = tracer.start("batch.collect", parent=batch[0].trace)
        deadline = time.perf_counter() + self.max_wait_ms / 1e3
        while len(batch) < self.max_batch:
            if batch[-1].expires_at is not None:
                # The member drained last is the only one not yet
                # folded into the hold deadline.
                deadline = min(deadline, batch[-1].expires_at)
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                # Deadline passed: take whatever is already queued, but
                # do not wait for more.
                try:
                    self._admit(source.get_nowait(), batch, source,
                                on_expired)
                    continue
                except queue.Empty:
                    break
            try:
                self._admit(source.get(timeout=remaining), batch, source,
                            on_expired)
            except queue.Empty:
                break
        if span is not None:
            span.finish(size=len(batch))
        return batch

    @staticmethod
    def group_compatible(batch: list[PredictRequest]
                         ) -> list[list[PredictRequest]]:
        """Split a drained batch into fusable runs, preserving order."""
        groups: dict[tuple, list[PredictRequest]] = {}
        order: list[tuple] = []
        for req in batch:
            key = req.group_key()
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(req)
        return [groups[k] for k in order]
