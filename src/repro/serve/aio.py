"""Asyncio front-end over the prediction server.

The worker-thread server speaks ``concurrent.futures.Future`` — the
right currency for thread clients, the wrong one for an event loop: a
coroutine that calls ``future.result()`` blocks its whole loop.  This
module is the bridge (ROADMAP "Async/streaming front-end"):
:class:`AsyncPredictionServer` wraps each submitted future into an
awaitable tied to the running loop, so thousands of outstanding ω
queries cost one coroutine each instead of one thread each — the shape
of traffic the paper's Sec. 4.3 amortization argument assumes, and the
queueing discipline an outer simulation loop (DNN-MG style) needs to
mix interactive and bulk requests on one fleet.

The facade adds **no second scheduler**: priorities, deadlines and
backpressure are enforced by the server's own queue
(:mod:`repro.serve.batching`), so sync and async clients of one server
compete under exactly the same policy.  Rejections surface naturally:
``await`` raises :class:`~repro.serve.errors.DeadlineExceeded` for
expired requests, and ``submit`` raises
:class:`~repro.serve.errors.ServerOverloaded` synchronously when
``max_pending`` overflows — shed or retry with backoff in the client.

Quickstart::

    server = PredictionServer(registry, ServerConfig(max_pending=256))
    async with AsyncPredictionServer(server) as aserver:
        u = await aserver.predict("m", omega, priority=5, deadline_s=0.5)
        many = await aserver.predict_many("m", omegas)   # gathers a lane
"""

from __future__ import annotations

import asyncio

import numpy as np

from .server import PredictionServer

__all__ = ["AsyncPredictionServer"]


class AsyncPredictionServer:
    """Awaitable facade over one :class:`PredictionServer`.

    Owns no threads and no queue of its own — every call delegates to
    the wrapped server's ``submit`` and converts the returned
    ``concurrent.futures.Future`` into an ``asyncio`` future on the
    running loop.  Lifecycle: ``async with`` starts the server's worker
    fleet on entry and closes it (workers *and* compute executor) on
    exit, off-loop so a process-pool teardown cannot stall the event
    loop.  A server started by other means can be wrapped and used
    directly; ``start``/``close`` are then the caller's business.
    """

    def __init__(self, server: PredictionServer) -> None:
        self.server = server

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def __aenter__(self) -> "AsyncPredictionServer":
        # start() warms the compute executor (possibly forking a process
        # pool) — real work, so keep it off the loop.
        await asyncio.get_running_loop().run_in_executor(
            None, self.server.start)
        return self

    async def __aexit__(self, *exc) -> None:
        await asyncio.get_running_loop().run_in_executor(
            None, self.server.close)

    # ------------------------------------------------------------------ #
    # Awaitable front-end
    # ------------------------------------------------------------------ #
    def submit(self, model_name: str, omega: np.ndarray,
               resolution: int | None = None, *,
               priority: int | None = None,
               deadline_s: float | None = None) -> "asyncio.Future":
        """Queue one prediction; returns an awaitable of the full field.

        Must be called with a running event loop.  Cache hits come back
        already resolved; queue overflow (``max_pending``) raises
        :class:`ServerOverloaded` here, synchronously, and bad requests
        (wrong ω arity, unknown model) raise exactly as on the sync
        path — backpressure and validation must not hide behind an
        ``await``.
        """
        future = self.server.submit(model_name, omega, resolution,
                                    priority=priority, deadline_s=deadline_s)
        return asyncio.wrap_future(future)

    async def predict(self, model_name: str, omega: np.ndarray,
                      resolution: int | None = None, *,
                      priority: int | None = None,
                      deadline_s: float | None = None) -> np.ndarray:
        """One awaited prediction (async counterpart of ``predict``)."""
        return await self.submit(model_name, omega, resolution,
                                 priority=priority, deadline_s=deadline_s)

    async def predict_many(self, model_name: str, omegas: np.ndarray,
                           resolution: int | None = None, *,
                           priority: int | None = None,
                           deadline_s: float | None = None) -> np.ndarray:
        """Submit a lane of ω concurrently and gather, shape (B, *grid)."""
        omegas = np.atleast_2d(np.asarray(omegas, dtype=np.float64))
        fields = await asyncio.gather(*[
            self.submit(model_name, w, resolution, priority=priority,
                        deadline_s=deadline_s) for w in omegas])
        return np.stack(fields)

    def __repr__(self) -> str:
        return f"AsyncPredictionServer({self.server!r})"
