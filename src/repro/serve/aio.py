"""Asyncio front-end over the prediction server.

The worker-thread server speaks ``concurrent.futures.Future`` — the
right currency for thread clients, the wrong one for an event loop: a
coroutine that calls ``future.result()`` blocks its whole loop.  This
module is the bridge (ROADMAP "Async/streaming front-end"):
:class:`AsyncPredictionServer` wraps each submitted future into an
awaitable tied to the running loop, so thousands of outstanding ω
queries cost one coroutine each instead of one thread each — the shape
of traffic the paper's Sec. 4.3 amortization argument assumes, and the
queueing discipline an outer simulation loop (DNN-MG style) needs to
mix interactive and bulk requests on one fleet.

The facade adds **no second scheduler**: priorities, deadlines and
backpressure are enforced by the server's own queue
(:mod:`repro.serve.batching`), so sync and async clients of one server
compete under exactly the same policy.  Rejections surface naturally:
``await`` raises :class:`~repro.serve.errors.DeadlineExceeded` for
expired requests, and ``submit`` raises
:class:`~repro.serve.errors.ServerOverloaded` synchronously when
``max_pending`` overflows — shed or retry with backoff in the client.

Quickstart::

    server = PredictionServer(registry, ServerConfig(max_pending=256))
    async with AsyncPredictionServer(server) as aserver:
        u = await aserver.predict("m", omega, priority=5, deadline_s=0.5)
        many = await aserver.predict_many("m", omegas)   # gathers a lane
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

import numpy as np

from .server import PredictionServer

if TYPE_CHECKING:  # avoid a runtime import cycle with .fleet
    from .fleet import ShardedFleet

__all__ = ["AsyncPredictionServer"]


class AsyncPredictionServer:
    """Awaitable facade over one :class:`PredictionServer` — or one
    :class:`~repro.serve.fleet.ShardedFleet`.

    Owns no threads and no queue of its own — every call delegates to
    the wrapped back-end's ``submit`` and converts the returned
    ``concurrent.futures.Future`` into an ``asyncio`` future on the
    running loop.  Lifecycle: ``async with`` starts the back-end's
    worker fleet on entry and closes it (workers *and* compute
    executors) on exit, off-loop so a process-pool teardown cannot
    stall the event loop.  A back-end started by other means can be
    wrapped and used directly; ``start``/``close`` are then the
    caller's business.

    The fleet case is what makes the facade *shard-aware* without a
    second scheduler: routing, replica failover and health accounting
    all happen inside ``ShardedFleet.submit`` before the future is
    wrapped, so async clients get consistent-hash sharding for free —
    a faulted shard resolves the awaitable with the replica's answer,
    and only ``FleetUnavailable`` (every replica down) surfaces.  Hang
    faults are covered too: when the fleet has a ``shard_timeout_s``,
    the awaitable re-waits in budget-sized slices and calls the fleet's
    non-blocking ``hang_failover`` between them, so a shard that
    neither answers nor errors is ejected from the event loop exactly
    as it would be on the blocking path.
    """

    def __init__(self, server: "PredictionServer | ShardedFleet") -> None:
        self.server = server

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def __aenter__(self) -> "AsyncPredictionServer":
        # start() warms the compute executor (possibly forking a process
        # pool) — real work, so keep it off the loop.
        await asyncio.get_running_loop().run_in_executor(
            None, self.server.start)
        return self

    async def __aexit__(self, *exc) -> None:
        await asyncio.get_running_loop().run_in_executor(
            None, self.server.close)

    # ------------------------------------------------------------------ #
    # Awaitable front-end
    # ------------------------------------------------------------------ #
    def submit(self, model_name: str, omega: np.ndarray,
               resolution: int | None = None, *,
               priority: int | None = None,
               deadline_s: float | None = None,
               tenant: str | None = None) -> "asyncio.Future":
        """Queue one prediction; returns an awaitable of the full field.

        Must be called with a running event loop.  Cache hits come back
        already resolved; queue overflow (``max_pending``) raises
        :class:`ServerOverloaded` here, synchronously, per-tenant quota
        exhaustion raises :class:`TenantThrottled` likewise, and bad
        requests (wrong ω arity, unknown model) raise exactly as on the
        sync path — backpressure and validation must not hide behind an
        ``await``.
        """
        future = self.server.submit(model_name, omega, resolution,
                                    priority=priority, deadline_s=deadline_s,
                                    tenant=tenant)
        wrapped = asyncio.wrap_future(future)
        hang_failover = getattr(self.server, "hang_failover", None)
        budget = getattr(getattr(self.server, "config", None),
                         "shard_timeout_s", None)
        if hang_failover is None or budget is None:
            return wrapped
        return asyncio.ensure_future(
            self._guard_hangs(future, wrapped, hang_failover, budget))

    @staticmethod
    async def _guard_hangs(future, wrapped: "asyncio.Future",
                           hang_failover, budget: float):
        """Await a fleet future in ``shard_timeout_s`` slices, giving
        the fleet a chance to eject a hung shard between waits.

        ``hang_failover`` is non-blocking (eject + re-dispatch), so the
        event loop never stalls; the shield keeps a sliced wait from
        cancelling the underlying server future.  Terminates because a
        failover either answers or eventually exhausts the replica set,
        which resolves the future with ``FleetUnavailable``.

        A *client* cancellation (the caller's ``wait_for`` lapsing, a
        ``gather`` sibling failing) must still shed the request: the
        shield protects only the sliced waits, so on cancellation the
        underlying future is cancelled explicitly — same semantics as
        the unguarded ``wrap_future`` path.
        """
        while True:
            try:
                return await asyncio.wait_for(asyncio.shield(wrapped),
                                              budget)
            # asyncio.TimeoutError only merged into the builtin in 3.11.
            except (TimeoutError, asyncio.TimeoutError):
                if wrapped.done():
                    # A *stored* timeout (DeadlineExceeded) or an answer
                    # that landed in the race window — surface it as-is.
                    return await wrapped
                hang_failover(future)
            except asyncio.CancelledError:
                # Late resolutions must not log "exception was never
                # retrieved" after the client walked away.
                wrapped.add_done_callback(
                    lambda f: f.cancelled() or f.exception())
                wrapped.cancel()
                raise

    async def predict(self, model_name: str, omega: np.ndarray,
                      resolution: int | None = None, *,
                      priority: int | None = None,
                      deadline_s: float | None = None,
                      tenant: str | None = None) -> np.ndarray:
        """One awaited prediction (async counterpart of ``predict``).

        When the wrapped back-end is a fleet with a retry policy
        installed (``fleet.retry``), transient verdicts —
        ``FleetUnavailable``, ``ServerOverloaded``, ``TenantThrottled``
        — are re-submitted after the policy's backoff, awaited with
        ``asyncio.sleep`` so the loop keeps spinning.  Same semantics
        as the blocking ``ShardedFleet.predict`` retry loop: each retry
        is a fresh, individually conserved submit.
        """
        policy = getattr(self.server, "retry", None)
        attempt = 0
        while True:
            try:
                return await self.submit(
                    model_name, omega, resolution, priority=priority,
                    deadline_s=deadline_s, tenant=tenant)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                if policy is None:
                    raise
                delay = policy.plan(exc, attempt)
                if delay is None:
                    raise
                attempt += 1
                note = getattr(self.server, "note_retry", None)
                if note is not None:
                    note()
                if delay > 0:
                    await asyncio.sleep(delay)

    async def stream(self, model_name: str, omega: np.ndarray,
                     resolution: int | None = None, *,
                     priority: int | None = None,
                     deadline_s: float | None = None,
                     tenant: str | None = None,
                     buffer_tiles: int = 2):
        """Async iterator of ``(tile_index, core_slices, core)`` records.

        The asyncio face of streaming tiled inference::

            async for i, sl, core in aserver.stream("m", omega):
                out[sl] = core          # progressive assembly

        Each record is pulled off-loop (``run_in_executor``), so tile
        compute and buffer waits never block the event loop.  The
        per-stream buffer is bounded (``buffer_tiles``): a coroutine
        that consumes slowly backpressures the producing worker instead
        of accumulating tiles.  Backend errors — per-tile
        :class:`~repro.serve.errors.DeadlineExceeded` (carrying
        ``tiles_delivered``), ``ServerOverloaded``, fleet verdicts —
        surface through the iterator.  Exiting the ``async for`` early
        closes the stream and releases the producer.
        """
        loop = asyncio.get_running_loop()
        # A fleet streams with mid-stream failover; a bare server with
        # submit_stream.  Both return an iterator of tile records.
        open_stream = getattr(self.server, "stream", None) \
            or self.server.submit_stream
        source = await loop.run_in_executor(None, lambda: open_stream(
            model_name, omega, resolution, priority=priority,
            deadline_s=deadline_s, tenant=tenant,
            buffer_tiles=buffer_tiles))
        it = iter(source)
        done = object()   # StopIteration cannot cross run_in_executor

        def _next():
            try:
                return next(it)
            except StopIteration:
                return done

        try:
            while True:
                record = await loop.run_in_executor(None, _next)
                if record is done:
                    return
                yield record
        finally:
            close = getattr(source, "close", None)
            if close is not None:
                await loop.run_in_executor(None, close)

    async def predict_many(self, model_name: str, omegas: np.ndarray,
                           resolution: int | None = None, *,
                           priority: int | None = None,
                           deadline_s: float | None = None,
                           tenant: str | None = None) -> np.ndarray:
        """Submit a lane of ω concurrently and gather, shape (B, *grid)."""
        omegas = np.atleast_2d(np.asarray(omegas, dtype=np.float64))
        fields = await asyncio.gather(*[
            self.submit(model_name, w, resolution, priority=priority,
                        deadline_s=deadline_s, tenant=tenant)
            for w in omegas])
        return np.stack(fields)

    def __repr__(self) -> str:
        return f"AsyncPredictionServer({self.server!r})"
