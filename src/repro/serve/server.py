"""The prediction server: request queue, worker pool, cache and tiling.

This is the subsystem that turns a trained MGDiffNet checkpoint into a
service (the paper's Sec. 4.3 payoff: amortize one expensive training
run over many cheap ω queries).  A request flows:

    submit(model, ω) ── cache hit? ──> resolved future (no queue)
           │ miss
           ▼
      request queue ──> worker: micro-batch + group ──> fused forward
                                                    │   (tiled when the
                                                    │    grid is huge)
                                                    ▼
                                          cache fill + future results

Front-ends:

* **sync** — ``predict``/``predict_many`` on an unstarted server run the
  same path inline (cache, batching math, tiling) on the caller's
  thread; nothing to start or stop.
* **worker-thread** — ``start()`` spawns N worker threads; ``submit``
  returns a ``Future``; ``predict`` on a running server routes through
  the queue.  Workers pin the configured array backend (the registry's
  op dispatch is thread-local), so e.g. the threaded backend
  parallelizes inside a fused forward while workers overlap queue wait
  with compute.
* **asyncio** — :class:`repro.serve.aio.AsyncPredictionServer` wraps the
  worker-thread front-end's futures into awaitables.

The queue is a priority heap with deadlines and backpressure (see
:mod:`repro.serve.batching`): ``submit(..., priority=, deadline_s=)``
orders dequeue under saturation, expires stale requests with a keyed
``DeadlineExceeded`` before they waste a fused forward, and — with
``max_pending`` set — rejects overflow synchronously with a keyed
``ServerOverloaded`` (counted in ``stats.rejected``).

Where the *compute* of a fused forward runs is pluggable
(:mod:`repro.serve.executor`): ``executor='serial'`` keeps it inline on
the worker thread; ``'thread'`` fans tiled megavoxel forwards across a
shared thread pool; ``'process'`` escapes the GIL entirely — whole fused
forwards are dispatched to a process pool (and tiled forwards fan their
tiles across it), with the worker threads reduced to queueing/stitching
front-ends.  Identical requests arriving while a twin is queued attach to
the in-flight future instead of recomputing (``dedup_hits``).
"""

from __future__ import annotations

import pickle
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from ..backend import set_backend
from ..core.inference import predict_batch
from .batching import MicroBatcher, PredictRequest, RequestQueue
from .cache import LRUCache, result_key
from .errors import DeadlineExceeded, ServerOverloaded, TenantThrottled
from .executor import Executor, SerialExecutor, make_executor
from .registry import ModelEntry, ModelRegistry
from .tiling import (
    autotune_tile, plan_tiles, receptive_halo, stream_tiled_predict,
    tiled_predict,
)

__all__ = ["ServerConfig", "ServerStats", "PredictionServer",
           "TileStream", "StreamStalled"]

_LAT_WINDOW = 10_000

# Per-process cache of unpickled (model, problem) pairs inside process-
# pool workers, keyed by registry content version.
_REMOTE_ENTRY_CACHE: dict[str, tuple] = {}


def _predict_batch_remote(payload) -> np.ndarray:
    """Whole fused forward inside a process-pool worker (must pickle)."""
    version, blob, omegas, resolution = payload
    pair = _REMOTE_ENTRY_CACHE.get(version)
    if pair is None:
        pair = pickle.loads(blob)
        _REMOTE_ENTRY_CACHE[version] = pair
    model, problem = pair
    return predict_batch(model, problem, omegas, resolution=resolution)


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`PredictionServer`."""

    max_batch: int = 8
    max_wait_ms: float = 2.0
    workers: int = 1
    cache_bytes: int = 64 * 1024 * 1024
    omega_step: float = 1e-6          # cache-key quantization lattice
    tile_threshold_voxels: int = 2 ** 21  # tile forwards above ~2M voxels
    tile: "int | str | None" = None   # set: force tiling at this tile
    #                                   size; "autotune": measured winner
    halo: int | None = None           # None: receptive-field halo
    backend: str | None = None        # backend workers pin (None: inherit)
    executor: str = "serial"          # compute layer: serial|thread|process
    cache_dir: str | None = None      # set: spill the LRU to disk (npz)
    spill_max_bytes: int | None = None  # byte budget for the spill tier
    shared_spill: bool = False        # coordinate the budget across all
    # instances sharing cache_dir via the cross-process spill ledger
    max_pending: int = 0              # >0: bound the queue (backpressure)
    default_priority: int = 0         # priority for submits that set none
    default_deadline_s: float | None = None  # latency budget default
    priority_aging_s: float | None = None  # age-escalation rate (see
    # RequestQueue: a request overtakes one priority level per aging_s
    # seconds waited, bounding bulk-lane starvation; None = strict)


@dataclass
class ServerStats:
    """Aggregate serving statistics (latencies in seconds)."""

    requests: int = 0
    cache_hits: int = 0
    dedup_hits: int = 0
    batches: int = 0
    batched_requests: int = 0
    tiled_forwards: int = 0
    errors: int = 0
    rejected: int = 0          # max_pending backpressure rejections
    expired: int = 0           # deadlines missed before a fused forward
    throttled: int = 0         # per-tenant admission-control rejections
    streams: int = 0           # streaming requests accepted
    stream_tiles: int = 0      # tile records emitted by streams
    queue_depth: int = 0       # gauge: pending + in-flight at last read
    latencies: list = field(default_factory=list)

    def observe_latency(self, seconds: float) -> None:
        self.latencies.append(seconds)
        if len(self.latencies) > _LAT_WINDOW:
            del self.latencies[:len(self.latencies) - _LAT_WINDOW]

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies), q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0


class StreamStalled(RuntimeError):
    """``TileStream.next_record(timeout=...)`` found no record in time.

    Deliberately *not* a :class:`TimeoutError`: a stalled wait must be
    distinguishable from a :class:`DeadlineExceeded` terminal (which is
    one), because the fleet treats the former as a shard hang (eject +
    resume elsewhere) and the latter as the request's own verdict.
    """


class _StreamClosed(Exception):
    """Internal: the consumer closed the stream; the producer stops."""


def _stream_terminal(stream: "TileStream"):
    """Done-callback relaying a stream request's terminal outcome.

    The future resolves strictly after the last ``_emit``, so the
    terminal lands behind every buffered record — a consumer drains all
    delivered tiles before seeing the stream end (or its error).
    """
    def relay(future: Future) -> None:
        if future.cancelled():
            stream._finish(None)
            return
        stream._finish(future.exception())
    return relay


class TileStream:
    """Consumer handle for one streaming tiled prediction.

    Iterating yields ``(tile_index, core_slices, core)`` records:
    ``tile_index`` identifies the tile in plan order (stable regardless
    of completion order), ``core_slices`` is the spatial ``tuple`` of
    slices into the full ``(*grid.shape)`` field, and ``core`` is the
    masked prediction for that region.  Assembling every record via
    ``out[core_slices] = core`` reproduces the non-streamed prediction
    bitwise.

    Two modes, chosen by the server:

    * **pull** — the stream wraps a generator; each ``next`` runs the
      tile compute on the consumer's thread (sync front-end, cache
      hits).  Backpressure is inherent.
    * **push** — a server worker produces records into a bounded buffer
      (``buffer_tiles``); when the consumer falls behind, the producer's
      ``_emit`` blocks, which stalls that worker thread — a slow
      consumer backpressures the pool instead of accumulating tiles.

    A terminal :class:`DeadlineExceeded` (per-tile deadline checks)
    carries ``tiles_delivered`` so a progressive client knows exactly
    how much of the field it holds.  ``close()`` releases the producer
    early; subsequent ``next`` raises ``StopIteration``.
    """

    def __init__(self, model_name: str, key: tuple | None,
                 shape: tuple[int, ...], tile_indices,
                 buffer_tiles: int = 2) -> None:
        self.model_name = model_name
        self.key = key
        self.shape = tuple(shape)
        self.tile_indices = tuple(int(i) for i in tile_indices)
        self.num_tiles = len(self.tile_indices)
        self.delivered = 0
        self._gen = None                      # pull mode
        self._cond = threading.Condition()    # push mode
        self._buf: list = []
        self._capacity = max(1, int(buffer_tiles))
        self._terminal: tuple | None = None   # ("end", None) | ("error", e)
        self._closed = False

    # -- consumer side ------------------------------------------------- #
    def __iter__(self) -> "TileStream":
        return self

    def __next__(self):
        return self.next_record()

    def next_record(self, timeout: float | None = None):
        """The next tile record; raises :class:`StreamStalled` when no
        record (or terminal) arrives within ``timeout`` seconds.

        In pull mode the compute runs here, on the calling thread, and
        ``timeout`` cannot apply.
        """
        if self._gen is not None:
            if self._closed:
                raise StopIteration
            record = next(self._gen)   # StopIteration/terminals propagate
            self.delivered += 1
            return record
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        with self._cond:
            while True:
                if self._closed:
                    raise StopIteration
                if self._buf:
                    record = self._buf.pop(0)
                    self.delivered += 1
                    self._cond.notify_all()   # free a blocked producer
                    return record
                if self._terminal is not None:
                    kind, exc = self._terminal
                    if kind == "error":
                        raise exc
                    raise StopIteration
                wait = None
                if deadline is not None:
                    wait = deadline - time.monotonic()
                    if wait <= 0:
                        raise StreamStalled(
                            f"stream for model {self.model_name!r} "
                            f"produced no tile within {timeout} s")
                self._cond.wait(wait)

    def close(self) -> None:
        """Stop consuming; a push-mode producer unblocks and stops."""
        if self._gen is not None:
            self._closed = True
            self._gen.close()
            return
        with self._cond:
            self._closed = True
            self._buf.clear()
            self._cond.notify_all()

    # -- producer side (server internals) ------------------------------ #
    def _emit(self, record) -> None:
        """Blocking bounded put; raises ``_StreamClosed`` after close."""
        with self._cond:
            while len(self._buf) >= self._capacity:
                if self._closed:
                    raise _StreamClosed
                self._cond.wait()
            if self._closed:
                raise _StreamClosed
            self._buf.append(record)
            self._cond.notify_all()

    def _finish(self, exc: BaseException | None = None) -> None:
        """Install the terminal outcome (first one wins)."""
        with self._cond:
            if self._terminal is None:
                self._terminal = ("error", exc) if exc is not None \
                    else ("end", None)
            self._cond.notify_all()

    def __repr__(self) -> str:
        return (f"TileStream(model={self.model_name!r}, "
                f"tiles={self.num_tiles}, delivered={self.delivered})")


class PredictionServer:
    """Batching, caching inference server over a :class:`ModelRegistry`."""

    def __init__(self, registry: ModelRegistry,
                 config: ServerConfig | None = None) -> None:
        self.registry = registry
        self.config = config or ServerConfig()
        # Optional per-tenant admission controller (see
        # repro.serve.control.admission); None admits everything.
        self.admission = None
        # Optional telemetry bundle (see repro.serve.telemetry); None
        # keeps every trace/metrics touchpoint a no-op attribute test.
        self.telemetry = None
        self.cache = LRUCache(self.config.cache_bytes,
                              spill_dir=self.config.cache_dir,
                              spill_max_bytes=self.config.spill_max_bytes,
                              shared_spill=self.config.shared_spill)
        self.stats = ServerStats()
        self._batcher = MicroBatcher(self.config.max_batch,
                                     self.config.max_wait_ms)
        # Priority heap, bounded when max_pending asks for backpressure;
        # priority_aging_s switches it to age-escalating virtual-start-
        # time order so the bulk lane cannot starve.
        self._queue = RequestQueue(maxsize=max(0, self.config.max_pending),
                                   aging_s=self.config.priority_aging_s)
        self._stop = threading.Event()
        self._workers: list[threading.Thread] = []
        self._stats_lock = threading.Lock()
        self._inflight: dict[tuple, Future] = {}
        self._inflight_lock = threading.Lock()
        self._executor: Executor | None = None
        self._executor_lock = threading.Lock()
        # Version-keyed pickle caches for process executors; guarded by
        # one lock because concurrent workers insert while hot swaps
        # prune (an unlocked iterate-and-delete would be crashy).
        self._blob_lock = threading.Lock()
        self._payload_blobs: dict[str, bytes] = {}  # entry version -> pickle
        self._net_blobs: dict[str, bytes] = {}      # version -> pickled net

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        return bool(self._workers)

    def queue_depth(self) -> int:
        """Cheap load gauge: requests pending in the queue plus those a
        worker has drained but not yet resolved.

        This is the primitive both power-of-two-choices read spreading
        and the autoscaler consume — ``unfinished_tasks`` is exactly
        put-count minus ``task_done``-count, so a request counts from
        accepted submit to resolution.  The reading is also stamped on
        ``stats.queue_depth`` so stats snapshots carry the gauge.
        """
        with self._queue.mutex:
            depth = self._queue.unfinished_tasks
        self.stats.queue_depth = depth
        return depth

    @property
    def executor(self) -> Executor:
        """The compute executor (created lazily from the config)."""
        with self._executor_lock:
            if self._executor is None:
                self._executor = make_executor(
                    self.config.executor, self.config.workers,
                    backend=self.config.backend)
                if self.telemetry is not None:
                    self._executor.tracer = self.telemetry.tracer
            return self._executor

    def enable_telemetry(self, telemetry,
                         register_views: bool = True) -> None:
        """Attach a :class:`~repro.serve.telemetry.Telemetry` bundle.

        Threads the tracer through the batcher and executor and — with
        ``register_views`` (the standalone-server default) — registers
        this server's :class:`ServerStats` fields as ``stats.server.*``
        read-time views on the registry.  A fleet enabling telemetry on
        its shards passes ``register_views=False``: per-shard numbers
        would collide on one name, and the fleet's merged stats already
        cover them.
        """
        self.telemetry = telemetry
        self._batcher.tracer = telemetry.tracer
        with self._executor_lock:
            if self._executor is not None:
                self._executor.tracer = telemetry.tracer
        if register_views:
            m = telemetry.metrics
            s = self.stats
            for name in ("requests", "cache_hits", "dedup_hits", "batches",
                         "batched_requests", "tiled_forwards", "errors",
                         "rejected", "expired", "throttled", "streams",
                         "stream_tiles", "queue_depth"):
                m.register_view(f"stats.server.{name}",
                                lambda s=s, n=name: getattr(s, n))
            m.register_view("stats.server.p50", lambda s=s: s.p50)
            m.register_view("stats.server.p99", lambda s=s: s.p99)
            m.register_view("stats.server.mean_batch_size",
                            lambda s=s: s.mean_batch_size)

    def start(self) -> "PredictionServer":
        """Spawn the worker-thread pool (idempotent)."""
        if self.running:
            return self
        # Materialize the executor before the worker threads exist: a
        # fork-based process pool must not be created from a process
        # already running compute threads (locks may be held mid-fork).
        self.executor.warm()
        self._stop.clear()
        for i in range(max(1, self.config.workers)):
            t = threading.Thread(target=self._worker_loop,
                                 name=f"repro-serve-{i}", daemon=True)
            t.start()
            self._workers.append(t)
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the workers; with ``drain`` pending requests finish first.

        The compute executor survives a stop so explicit
        ``stop()``/``start()`` cycles stay cheap; :meth:`close` (and the
        context-manager exit) tears it down.  A closed server remains
        usable — the executor is rebuilt lazily on the next use.
        """
        if not self.running:
            return
        if drain:
            self._queue.join()
        self._stop.set()
        for t in self._workers:
            t.join()
        self._workers.clear()
        # Undrained stop abandons queued requests: purge their in-flight
        # entries so a later identical submit computes fresh instead of
        # attaching to a future no worker will ever resolve.
        with self._inflight_lock:
            for key in [k for k, f in self._inflight.items()
                        if not f.done()]:
                del self._inflight[key]

    def close(self) -> None:
        """Stop the fleet and release the compute executor's workers."""
        self.stop()
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.close()

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        # Full teardown: leaving a `with` block must not leak a live
        # process pool.  Later calls lazily rebuild the executor.
        self.close()

    # ------------------------------------------------------------------ #
    # Front-ends
    # ------------------------------------------------------------------ #
    def submit(self, model_name: str, omega: np.ndarray,
               resolution: int | None = None, *,
               priority: int | None = None,
               deadline_s: float | None = None,
               tenant: str | None = None,
               trace_parent=None) -> Future:
        """Queue one prediction; returns a Future of the (full-field)
        NumPy array.  Cache hits resolve immediately without queueing.

        ``priority`` (default ``config.default_priority``) orders the
        request queue: under saturation higher priorities dequeue first.
        ``deadline_s`` (default ``config.default_deadline_s``) grants a
        latency budget from now; a request still queued when it runs out
        fails with a keyed :class:`DeadlineExceeded` instead of wasting a
        fused forward.  When ``config.max_pending`` bounds the queue, an
        overflowing submit raises :class:`ServerOverloaded` synchronously
        (and counts it in ``stats.rejected``) — shed or retry with
        backoff.  ``tenant`` names the request's accounting principal:
        with an admission controller installed a tenant past its
        token-bucket quota is rejected synchronously with a keyed
        :class:`TenantThrottled` (counted in ``stats.throttled``) before
        the request consumes any server state — cache lookups included.

        Served fields are read-only (hits and misses alike — they may be
        shared with the cache); copy before mutating."""
        if tenant is not None and self.admission is not None:
            retry_after = self.admission.try_acquire(tenant)
            if retry_after is not None:
                with self._stats_lock:
                    self.stats.throttled += 1
                quota = self.admission.quota_for(tenant)
                raise TenantThrottled(model_name, tenant, retry_after,
                                      rate=quota.rate, burst=quota.burst)
        entry = self.registry.get(model_name)
        r = int(resolution or entry.problem.resolution)
        omega = np.asarray(omega, dtype=np.float64).reshape(-1)
        if omega.size != entry.problem.field.m:
            # Reject here: a wrong-arity ω must never reach a worker,
            # where it would poison the fused np.stack of its whole group.
            raise ValueError(
                f"model {model_name!r} expects omega of length "
                f"{entry.problem.field.m}, got {omega.size}")
        t0 = time.perf_counter()
        tel = self.telemetry
        span = None
        if tel is not None:
            # ``trace_parent`` is the caller's context token (a fleet
            # attempt span, typically); None starts a fresh root, which
            # is where trace sampling applies.
            span = tel.tracer.start("server.request", parent=trace_parent,
                                    model=model_name)

        future: Future = Future()
        key = self._key(entry, omega, r)
        cached = self.cache.get(key)
        if cached is not None:
            with self._stats_lock:
                self.stats.requests += 1
                self.stats.cache_hits += 1
                self.stats.observe_latency(time.perf_counter() - t0)
            future.set_result(cached)
            if span is not None:
                span.finish(outcome="cache_hit")
            return future

        # In-flight dedup: a twin already queued (or computing) resolves
        # this request too — attach instead of recomputing.
        with self._inflight_lock:
            twin = self._inflight.get(key)
            if twin is None:
                self._inflight[key] = future
        if twin is not None:
            with self._stats_lock:
                self.stats.requests += 1
                self.stats.dedup_hits += 1
            if span is not None:
                span.finish(outcome="dedup")
            return twin

        if priority is None:
            priority = self.config.default_priority
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        request = PredictRequest(
            model_name=model_name, omega=omega, resolution=r, future=future,
            key=key, priority=int(priority), deadline_s=deadline_s,
            expires_at=(t0 + deadline_s if deadline_s is not None else None),
            tenant=tenant, trace=span)
        if self.running:
            if span is not None:
                request.trace_queue = tel.tracer.start("queue.wait",
                                                       parent=span)
            try:
                self._queue.put(request, block=False)
            except queue.Full:
                # Backpressure: reject synchronously before the request
                # consumes any server state (its dedup slot included —
                # a later identical submit must compute, not attach to
                # a future nothing will resolve).  A rejection is not an
                # accepted request: it counts in ``rejected``, not in
                # ``requests``, so retried submits don't inflate QPS.
                self._drop_inflight(request)
                with self._stats_lock:
                    self.stats.rejected += 1
                exc = ServerOverloaded(
                    model_name, key, pending=self._queue.qsize(),
                    max_pending=self.config.max_pending)
                # A twin may have attached between the in-flight insert
                # above and this rejection; failing the future (not just
                # raising) guarantees no attached caller waits forever.
                if future.set_running_or_notify_cancel():
                    future.set_exception(exc)
                if span is not None:
                    request.trace_queue.finish()
                    span.finish(outcome="rejected")
                raise exc from None
            with self._stats_lock:
                self.stats.requests += 1
            return future
        with self._stats_lock:
            self.stats.requests += 1
        if request.expired():
            # Sync front-end honors a zero/negative budget the same way
            # the queue would, so deadline semantics don't depend on
            # whether the server is running.
            self._expire_request(request)
        else:
            # Sync front-end: same path, caller's thread.
            self._process_group(entry, [request])
        return future

    def submit_stream(self, model_name: str, omega: np.ndarray,
                      resolution: int | None = None, *,
                      priority: int | None = None,
                      deadline_s: float | None = None,
                      tenant: str | None = None,
                      tiles=None, buffer_tiles: int = 2) -> TileStream:
        """Stream one prediction tile by tile; returns a
        :class:`TileStream` yielding ``(tile_index, core_slices, core)``
        records as tile forwards complete.

        The request rides the same machinery as :meth:`submit` —
        admission control, the priority/deadline queue, ``max_pending``
        backpressure — but resolves progressively: the first record
        arrives after one tile forward instead of after the full field.
        The deadline is enforced *per tile*: before each tile's compute
        the budget is re-checked, and an expired stream terminates with
        a keyed :class:`DeadlineExceeded` carrying
        ``tiles_delivered``-so-far.  A cache hit streams the cached
        field's tile cores without compute; a fully delivered stream
        fills the cache like a fused forward would.

        ``tiles`` restricts the stream to a subset of tile indices (the
        fleet's mid-stream resume uses this); ``buffer_tiles`` bounds
        how many completed-but-unconsumed records a running server
        buffers before the producing worker blocks (slow-consumer
        backpressure).  Streams bypass in-flight dedup — two identical
        streams each deliver their own records.
        """
        if tenant is not None and self.admission is not None:
            retry_after = self.admission.try_acquire(tenant)
            if retry_after is not None:
                with self._stats_lock:
                    self.stats.throttled += 1
                quota = self.admission.quota_for(tenant)
                raise TenantThrottled(model_name, tenant, retry_after,
                                      rate=quota.rate, burst=quota.burst)
        entry = self.registry.get(model_name)
        r = int(resolution or entry.problem.resolution)
        omega = np.asarray(omega, dtype=np.float64).reshape(-1)
        if omega.size != entry.problem.field.m:
            raise ValueError(
                f"model {model_name!r} expects omega of length "
                f"{entry.problem.field.m}, got {omega.size}")
        t0 = time.perf_counter()
        if priority is None:
            priority = self.config.default_priority
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        expires_at = t0 + deadline_s if deadline_s is not None else None

        # Resolve the plan eagerly: tile identities must be fixed before
        # any compute so a resuming caller can name the undelivered set.
        tile, halo = self._tile_params(entry, r)
        if tile == "autotune":
            tile = autotune_tile(entry.model, entry.problem, r, halo,
                                 self.executor)
        shape = entry.problem.grid(r).shape
        plan = plan_tiles(shape, tile, halo, 2 ** entry.model.net.depth)
        if tiles is None:
            indices = tuple(range(plan.num_tiles))
        else:
            indices = tuple(int(t) for t in tiles)
            for t in indices:
                if not 0 <= t < plan.num_tiles:
                    raise ValueError(
                        f"tile index {t} out of range for "
                        f"{plan.num_tiles} tiles")
        key = self._key(entry, omega, r)
        stream = TileStream(model_name, key, shape, indices,
                            buffer_tiles=buffer_tiles)
        stream._plan, stream._tile, stream._halo = plan, tile, halo

        cached = self.cache.get(key)
        if cached is not None:
            with self._stats_lock:
                self.stats.requests += 1
                self.stats.streams += 1
                self.stats.cache_hits += 1
            stream._gen = self._stream_cached(
                stream, plan, cached, expires_at, deadline_s, t0)
            return stream

        request = PredictRequest(
            model_name=model_name, omega=omega, resolution=r,
            future=Future(), key=key, priority=int(priority),
            deadline_s=deadline_s, expires_at=expires_at, tenant=tenant,
            stream=stream)
        request.future.add_done_callback(_stream_terminal(stream))
        if self.running:
            try:
                self._queue.put(request, block=False)
            except queue.Full:
                with self._stats_lock:
                    self.stats.rejected += 1
                raise ServerOverloaded(
                    model_name, key, pending=self._queue.qsize(),
                    max_pending=self.config.max_pending) from None
            with self._stats_lock:
                self.stats.requests += 1
                self.stats.streams += 1
            return stream
        with self._stats_lock:
            self.stats.requests += 1
            self.stats.streams += 1
        # Sync front-end: lazy pull-mode generator — each ``next`` runs
        # one tile's compute on the consumer's thread.
        stream._gen = self._stream_records(entry, request)
        return stream

    def predict(self, model_name: str, omega: np.ndarray,
                resolution: int | None = None,
                timeout: float | None = None, *,
                priority: int | None = None,
                deadline_s: float | None = None,
                tenant: str | None = None) -> np.ndarray:
        """Blocking single prediction (sync front-end)."""
        return self.submit(model_name, omega, resolution, priority=priority,
                           deadline_s=deadline_s,
                           tenant=tenant).result(timeout)

    def predict_many(self, model_name: str, omegas: np.ndarray,
                     resolution: int | None = None,
                     timeout: float | None = None, *,
                     priority: int | None = None,
                     deadline_s: float | None = None,
                     tenant: str | None = None) -> np.ndarray:
        """Submit a batch of ω and gather results, shape (B, *grid)."""
        omegas = np.atleast_2d(np.asarray(omegas, dtype=np.float64))
        futures = [self.submit(model_name, w, resolution, priority=priority,
                               deadline_s=deadline_s, tenant=tenant)
                   for w in omegas]
        return np.stack([f.result(timeout) for f in futures])

    # ------------------------------------------------------------------ #
    # Worker internals
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        if self.config.backend is not None:
            # Backend choice is thread-local; each worker pins its own.
            set_backend(self.config.backend)
        while True:
            batch = self._batcher.collect(self._queue, stop=self._stop,
                                          on_expired=self._expire_request)
            if not batch:
                return
            try:
                for group in MicroBatcher.group_compatible(batch):
                    try:
                        entry = self.registry.get(group[0].model_name)
                    except Exception as exc:
                        # Model unregistered between submit and dispatch.
                        with self._stats_lock:
                            self.stats.errors += len(group)
                        for req in group:
                            claimed = self._claim(req)
                            self._drop_inflight(req)
                            if claimed:
                                req.future.set_exception(exc)
                        continue
                    if group[0].stream is not None:
                        # Streams form singleton groups by construction.
                        self._process_stream(entry, group[0])
                    else:
                        self._process_group(entry, group)
            finally:
                for _ in batch:
                    self._queue.task_done()

    def _claim(self, req: PredictRequest) -> bool:
        """Claim a request's future for resolution; ``False`` when the
        client already cancelled it while it was queued.

        The asyncio facade makes cancellation routine (``wait_for``
        timeouts, ``gather`` cancelling siblings), and ``wrap_future``
        propagates it to the pending server future — after which
        ``set_result``/``set_exception`` would raise InvalidStateError
        and kill the worker thread.  Claiming marks the future RUNNING,
        so later cancels fail cleanly instead; a request whose claim
        fails is dropped without compute, its dedup slot released so a
        resubmit computes fresh.
        """
        if req.future.set_running_or_notify_cancel():
            return True
        self._drop_inflight(req)
        if req.trace is not None:
            if req.trace_queue is not None:
                req.trace_queue.finish()
            req.trace.finish(outcome="cancelled")
        return False

    def _expire_request(self, req: PredictRequest) -> None:
        """Fail a past-deadline request with a keyed error (no compute)."""
        with self._stats_lock:
            self.stats.expired += 1
        if self._claim(req):
            req.future.set_exception(DeadlineExceeded(
                req.model_name, req.key, deadline_s=req.deadline_s or 0.0,
                waited_s=time.perf_counter() - req.enqueued_at,
                # A stream that expires while queued delivered nothing.
                tiles_delivered=(0 if req.stream is not None else None)))
        self._drop_inflight(req)
        if req.trace is not None:
            if req.trace_queue is not None:
                req.trace_queue.finish()
            req.trace.finish(outcome="expired")

    def _drop_inflight(self, req: PredictRequest) -> None:
        if req.key is None:
            return
        with self._inflight_lock:
            self._inflight.pop(req.key, None)

    def _process_group(self, entry: ModelEntry,
                       group: list[PredictRequest]) -> None:
        """One fused forward for compatible requests; resolve futures."""
        # Claim every future first: requests cancelled while queued are
        # dropped here, before they cost a slot in the fused stack.
        group = [req for req in group if self._claim(req)]
        if not group:
            return
        r = group[0].resolution
        tel = self.telemetry
        fspan = None
        if tel is not None:
            for req in group:
                if req.trace_queue is not None:
                    req.trace_queue.finish()
            parent = next((req.trace for req in group
                           if req.trace is not None), None)
            if parent is not None:
                fspan = tel.tracer.start("server.forward", parent=parent,
                                         batch=len(group))
        try:
            omegas = np.stack([req.omega for req in group])
            # Only pass the span when tracing is live: chaos hooks and
            # tests wrap ``_forward(entry, omegas, resolution)`` and must
            # keep working verbatim with telemetry off.
            fields = (self._forward(entry, omegas, r, trace=fspan)
                      if fspan is not None
                      else self._forward(entry, omegas, r))
        except Exception as exc:
            if fspan is not None:
                fspan.finish(error=type(exc).__name__)
            with self._stats_lock:
                self.stats.errors += len(group)
            for req in group:
                self._drop_inflight(req)
                req.future.set_exception(exc)
                if req.trace is not None:
                    req.trace.finish(outcome="error")
            return
        if fspan is not None:
            fspan.finish()
        now = time.perf_counter()
        with self._stats_lock:
            self.stats.batches += 1
            self.stats.batched_requests += len(group)
            for req in group:
                self.stats.observe_latency(now - req.enqueued_at)
        for req, u in zip(group, fields):
            key = req.key if req.key is not None \
                else self._key(entry, req.omega, r)
            stored = self.cache.put(key, u)
            if stored is None:
                # Not admitted (cache disabled / oversized field): keep
                # the served-results-are-immutable contract anyway so
                # callers behave identically on miss and replay.
                u.flags.writeable = False
                stored = u
            # Fill the cache before dropping the in-flight entry: a twin
            # arriving in between hits one of the two, never neither.
            self._drop_inflight(req)
            req.future.set_result(stored)
            if req.trace is not None:
                req.trace.finish(outcome="served")

    def _process_stream(self, entry: ModelEntry,
                        req: PredictRequest) -> None:
        """Produce one stream's tile records on a worker thread.

        Records go into the stream's bounded buffer (``_emit`` blocks
        when the consumer lags — the backpressure seam); the terminal
        outcome travels through ``req.future``, whose done-callback
        relays it into the stream *behind* every buffered record.
        """
        stream = req.stream
        if not self._claim(req):
            stream._finish(None)
            return
        try:
            for record in self._stream_records(entry, req):
                stream._emit(record)
        except _StreamClosed:
            # Consumer walked away mid-stream: nothing left to report.
            req.future.set_result(None)
        except Exception as exc:
            if not isinstance(exc, DeadlineExceeded):
                with self._stats_lock:
                    self.stats.errors += 1
            req.future.set_exception(exc)
        else:
            with self._stats_lock:
                self.stats.observe_latency(
                    time.perf_counter() - req.enqueued_at)
            req.future.set_result(None)

    def _stream_records(self, entry: ModelEntry, req: PredictRequest):
        """Generator of one stream's records, deadline-checked per tile.

        The budget is re-checked *before* each tile's compute, so an
        expired stream dies early — with a keyed
        :class:`DeadlineExceeded` carrying ``tiles_delivered`` — instead
        of finishing the field nobody is waiting for.  A stream that
        covers every tile assembles the full field on the side and fills
        the cache, exactly as a fused forward would.
        """
        stream = req.stream
        plan = stream._plan
        with self._stats_lock:
            self.stats.tiled_forwards += 1
        complete = set(stream.tile_indices) == set(range(plan.num_tiles))
        out = None
        n = 0
        it = self._stream_tiles(entry, req.omega, req.resolution,
                                stream.tile_indices, stream._tile,
                                stream._halo)
        try:
            while True:
                if req.expired():
                    with self._stats_lock:
                        self.stats.expired += 1
                    raise DeadlineExceeded(
                        req.model_name, req.key,
                        deadline_s=req.deadline_s or 0.0,
                        waited_s=time.perf_counter() - req.enqueued_at,
                        tiles_delivered=n)
                try:
                    i, sl, core = next(it)
                except StopIteration:
                    break
                if complete:
                    if out is None:
                        out = np.empty(stream.shape, dtype=core.dtype)
                    out[sl] = core
                with self._stats_lock:
                    self.stats.stream_tiles += 1
                yield i, sl, core
                n += 1
        finally:
            it.close()
        if complete and out is not None:
            self.cache.put(req.key, out)

    def _stream_cached(self, stream: TileStream, plan, cached: np.ndarray,
                       expires_at: float | None, deadline_s: float | None,
                       t0: float):
        """Stream a cache hit: slice the cached field per plan block (no
        compute), still honoring per-tile deadline checks."""
        n = 0
        for i in stream.tile_indices:
            if expires_at is not None and time.perf_counter() > expires_at:
                with self._stats_lock:
                    self.stats.expired += 1
                raise DeadlineExceeded(
                    stream.model_name, stream.key,
                    deadline_s=deadline_s or 0.0,
                    waited_s=time.perf_counter() - t0, tiles_delivered=n)
            sl = tuple(slice(a, b) for a, b in plan.blocks[i])
            with self._stats_lock:
                self.stats.stream_tiles += 1
            yield i, sl, cached[sl]
            n += 1

    def _stream_tiles(self, entry: ModelEntry, omega: np.ndarray,
                      resolution: int, tiles, tile, halo):
        """Raw tile-record generator — the stream compute seam.

        Yields ``(tile_index, core_slices, core)`` with ``core`` of
        shape ``(*core_shape)`` (the single-request batch dim dropped).
        The chaos/replay layer wraps this method to gate or fault a
        shard's stream production, mirroring its ``_forward`` hook.
        """
        executor = self.executor
        net_ref = (self._net_ref(entry) if executor.kind == "process"
                   else None)
        for i, sl, core in stream_tiled_predict(
                entry.model, entry.problem, omega.reshape(1, -1),
                resolution=resolution, tile=tile, halo=halo,
                executor=executor, net_ref=net_ref, tiles=tiles):
            yield i, sl, core[0]

    def _forward(self, entry: ModelEntry, omegas: np.ndarray,
                 resolution: int, trace=None) -> np.ndarray:
        """Fused forward — tiled when the grid exceeds the threshold, or
        always when an explicit tile size is configured.  The configured
        executor decides where the compute lands: tiled forwards fan
        their tiles across it; whole forwards are shipped to a process
        pool when one is configured.  ``trace`` is the forward span:
        tiled forwards hang their per-tile spans under it."""
        voxels = resolution ** entry.problem.ndim
        if (self.config.tile is not None
                or voxels > self.config.tile_threshold_voxels):
            with self._stats_lock:
                self.stats.tiled_forwards += 1
            tile, halo = self._tile_params(entry, resolution)
            executor = self.executor
            # Process path: replay the version-cached net blob so a
            # long-running server serializes each model exactly once
            # instead of re-pickling per tiled call.
            net_ref = (self._net_ref(entry) if executor.kind == "process"
                       else None)
            tracer = (self.telemetry.tracer
                      if self.telemetry is not None and trace is not None
                      else None)
            return tiled_predict(entry.model, entry.problem, omegas,
                                 resolution=resolution, tile=tile, halo=halo,
                                 executor=executor, net_ref=net_ref,
                                 tracer=tracer, trace_parent=trace)
        executor = self.executor
        if executor.kind == "process":
            payload = (entry.version, self._entry_blob(entry),
                       omegas, resolution)
            return executor.map(_predict_batch_remote, [payload])[0]
        return predict_batch(entry.model, entry.problem, omegas,
                             resolution=resolution)

    def _entry_blob(self, entry: ModelEntry) -> bytes:
        """Pickled (model, problem) for process workers, cached per
        content version so repeated requests reuse one serialization."""
        # Serialize under the lock: pickling happens once per content
        # version by contract, and a check-then-act window would let
        # concurrent workers each build a model-sized blob after a hot
        # swap.  Holding the lock through a (rare) pickle is cheaper
        # than N transient copies of a large model.
        with self._blob_lock:
            blob = self._payload_blobs.get(entry.version)
            if blob is None:
                blob = pickle.dumps((entry.model, entry.problem))
                self._payload_blobs[entry.version] = blob
                self._prune_blobs()
        return blob

    def _net_ref(self, entry: ModelEntry) -> tuple[str, bytes]:
        """``(version, pickled net)`` for tiled process forwards, cached
        per content version — the same amortization ``_entry_blob``
        gives fused forwards, applied to the tiled path."""
        with self._blob_lock:
            blob = self._net_blobs.get(entry.version)
            if blob is None:
                blob = pickle.dumps(entry.model.net)
                self._net_blobs[entry.version] = blob
                self._prune_blobs()
        return entry.version, blob

    def _prune_blobs(self) -> None:
        """Drop cached blobs of versions the registry no longer serves
        (``_blob_lock`` held by the caller).

        Versions only ever change on a hot swap, so this runs once per
        new version, not per request — without it a long-running server
        would leak one model-sized blob per retrain forever.
        """
        live = {e.version for e in self.registry.entries()}
        for cache in (self._payload_blobs, self._net_blobs):
            for version in [v for v in cache if v not in live]:
                del cache[version]

    def _tile_params(self, entry: ModelEntry,
                     resolution: int) -> tuple[int, int]:
        multiple = 2 ** entry.model.net.depth
        halo = (self.config.halo if self.config.halo is not None
                else receptive_halo(entry.model))
        tile = self.config.tile
        if tile is None:
            # Aim each tile's core at ~the threshold volume so the padded
            # forward stays within the same memory envelope.
            target = max(multiple, int(round(
                self.config.tile_threshold_voxels
                ** (1.0 / entry.problem.ndim))))
            tile = min(resolution, (target // multiple) * multiple)
        return tile, halo

    def _key(self, entry: ModelEntry, omega: np.ndarray,
             resolution: int) -> tuple:
        return result_key(entry.version, entry.problem_signature(), omega,
                          resolution, step=self.config.omega_step)

    def __repr__(self) -> str:
        s = self.stats
        return (f"PredictionServer(models={list(self.registry.names())}, "
                f"running={self.running}, requests={s.requests}, "
                f"cache_hits={s.cache_hits}, batches={s.batches})")
