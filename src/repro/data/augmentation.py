"""Physics-aware data augmentation.

The benchmark problem's geometry (Dirichlet data on the x-faces,
zero-flux on every other face) is invariant under reflections of all
*non-BC* axes: if ``u`` solves the problem for ``nu``, then ``flip_y u``
solves it for ``flip_y nu`` (and likewise z in 3D).  Training inputs can
therefore be augmented with these reflections for free — a standard trick
for CNN surrogates that the equivariance tests verify against the FEM
solver.
"""

from __future__ import annotations

import numpy as np

__all__ = ["symmetry_axes", "reflect_field", "augment_batch"]


def symmetry_axes(ndim: int) -> tuple[int, ...]:
    """Spatial axes whose reflection leaves the BVP invariant.

    Axis 0 carries the Dirichlet data and is *not* a symmetry; all other
    axes have homogeneous Neumann faces and are.
    """
    return tuple(range(1, ndim))


def reflect_field(field: np.ndarray, axes: tuple[int, ...],
                  spatial_offset: int = 0) -> np.ndarray:
    """Flip a field along the given *spatial* axes.

    ``spatial_offset`` maps spatial axis k to array axis
    ``k + spatial_offset`` (use 2 for batched (N, C, ...) arrays).
    """
    if not axes:
        return field.copy()
    return np.flip(field, axis=tuple(a + spatial_offset for a in axes)).copy()


def augment_batch(inputs: np.ndarray, rng: np.random.Generator,
                  ndim: int | None = None) -> np.ndarray:
    """Randomly reflect each sample of a batched (N, C, *spatial) array
    along a random subset of the symmetry axes."""
    d = ndim if ndim is not None else inputs.ndim - 2
    out = inputs.copy()
    sym = symmetry_axes(d)
    for i in range(inputs.shape[0]):
        chosen = tuple(a for a in sym if rng.random() < 0.5)
        if chosen:
            out[i] = reflect_field(inputs[i], chosen, spatial_offset=1)
    return out
