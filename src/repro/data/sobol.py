"""Quasi-random Sobol sampling of the PDE parameter space.

The paper samples 65536 coefficient vectors ω with Sobol sampling
(Sec. 4.1).  We provide a from-scratch Gray-code Sobol generator (direction
numbers from Joe & Kuo for the first six dimensions — enough for the
m = 4 dimensional ω of Eq. 10 plus headroom) and cross-check it against
:mod:`scipy.stats.qmc` in the tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SobolSampler", "sample_omega"]

# Joe-Kuo new direction numbers: (dimension index, s, a, m_i...).  Dimension
# 0 is the van der Corput sequence (handled specially).
_JOE_KUO = [
    # s, a, [m_1, ..., m_s]
    (1, 0, [1]),
    (2, 1, [1, 3]),
    (3, 1, [1, 3, 1]),
    (3, 2, [1, 1, 1]),
    (4, 1, [1, 1, 3, 3]),
    (4, 4, [1, 3, 5, 13]),
    (5, 2, [1, 1, 5, 5, 17]),
    (5, 4, [1, 1, 5, 5, 5]),
    (5, 7, [1, 1, 7, 11, 19]),
]

_BITS = 31


class SobolSampler:
    """Gray-code Sobol sequence generator in up to 10 dimensions.

    Produces points in [0, 1)^d.  ``skip`` points can be discarded
    up-front (common practice: skip the initial zero point).
    """

    def __init__(self, dimension: int, skip: int = 1) -> None:
        if not 1 <= dimension <= 1 + len(_JOE_KUO):
            raise ValueError(f"dimension must be in [1, {1 + len(_JOE_KUO)}]")
        self.dimension = dimension
        self._v = self._direction_vectors(dimension)
        self._x = np.zeros(dimension, dtype=np.uint64)
        self._count = 0
        if skip:
            self.sample(skip)

    @staticmethod
    def _direction_vectors(dimension: int) -> np.ndarray:
        v = np.zeros((dimension, _BITS), dtype=np.uint64)
        # Dimension 0: van der Corput (m_i = 1 for all i).
        for i in range(_BITS):
            v[0, i] = np.uint64(1) << np.uint64(_BITS - 1 - i)
        for d in range(1, dimension):
            s, a, m = _JOE_KUO[d - 1]
            m = list(m)
            for i in range(_BITS):
                if i < s:
                    v[d, i] = np.uint64(m[i]) << np.uint64(_BITS - 1 - i)
                else:
                    new = int(v[d, i - s]) ^ (int(v[d, i - s]) >> s)
                    for k in range(1, s):
                        if (a >> (s - 1 - k)) & 1:
                            new ^= int(v[d, i - k])
                    v[d, i] = np.uint64(new)
        return v

    def sample(self, n: int) -> np.ndarray:
        """Next ``n`` points of the sequence, shape (n, dimension)."""
        out = np.empty((n, self.dimension), dtype=np.float64)
        x = self._x.copy()
        for j in range(n):
            out[j] = x.astype(np.float64) / float(1 << _BITS)
            # Advance by Gray code: flip direction of lowest zero bit of count.
            c = self._count
            pos = 0
            while c & 1:
                c >>= 1
                pos += 1
            x ^= self._v[:, pos]
            self._count += 1
        self._x = x
        return out

    def reset(self) -> None:
        self._x = np.zeros(self.dimension, dtype=np.uint64)
        self._count = 0


def sample_omega(n: int, m: int = 4, omega_range: tuple[float, float] = (-3.0, 3.0),
                 skip: int = 1, engine: str = "own") -> np.ndarray:
    """Sobol-sample ``n`` parameter vectors ω in ``omega_range^m``.

    ``engine='own'`` uses :class:`SobolSampler`; ``engine='scipy'`` uses
    :class:`scipy.stats.qmc.Sobol` (scrambling disabled so both are
    deterministic).
    """
    lo, hi = omega_range
    if engine == "own":
        pts = SobolSampler(m, skip=skip).sample(n)
    elif engine == "scipy":
        from scipy.stats import qmc

        sampler = qmc.Sobol(d=m, scramble=False)
        if skip:
            sampler.fast_forward(skip)
        pts = sampler.random(n)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    return lo + (hi - lo) * pts
