"""Datasets of parametric diffusivity fields.

A dataset owns the Sobol-sampled parameter vectors ω and materializes the
input fields at any requested resolution — this is what feeds the same
network at the different multigrid levels (Fig. 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fem.grid import UniformGrid
from .diffusivity import LogPermeabilityField
from .sobol import sample_omega

__all__ = ["DiffusivityDataset"]


class DiffusivityDataset:
    """Sobol-sampled diffusivity fields for a parametric Poisson problem.

    Parameters
    ----------
    field:
        The Eq. 10 evaluator (or anything with ``evaluate_batch``).
    n_samples:
        Number of ω samples.
    omega_range:
        Box for ω (paper: [-3, 3]^4).
    input_transform:
        'log' feeds the network the KL-expansion log-field (well
        conditioned); 'identity' feeds raw ν.  The energy loss always
        receives raw ν regardless.
    """

    def __init__(self, field: LogPermeabilityField, n_samples: int,
                 omega_range: tuple[float, float] = (-3.0, 3.0),
                 skip: int = 1, dtype=np.float32,
                 input_transform: str = "log",
                 omegas: np.ndarray | None = None) -> None:
        if input_transform not in ("log", "identity"):
            raise ValueError(f"unknown input transform {input_transform!r}")
        self.field = field
        self.dtype = dtype
        self.input_transform = input_transform
        if omegas is not None:
            omegas = np.asarray(omegas, dtype=np.float64)
            if omegas.ndim != 2 or omegas.shape[1] != field.m:
                raise ValueError(f"omegas must be (N, {field.m})")
            self.omegas = omegas
        else:
            self.omegas = sample_omega(n_samples, m=field.m,
                                       omega_range=omega_range, skip=skip)
        self._cache: dict[tuple[int, str], np.ndarray] = {}

    def __len__(self) -> int:
        return self.omegas.shape[0]

    @property
    def ndim(self) -> int:
        return self.field.ndim

    # ------------------------------------------------------------------ #
    def inputs_at(self, resolution: int) -> np.ndarray:
        """Network inputs ``(N, 1, *R)`` at the given resolution (cached)."""
        key = (resolution, "in")
        if key not in self._cache:
            grid = UniformGrid(self.ndim, resolution)
            self._cache[key] = self.field.evaluate_batch(
                self.omegas, grid, dtype=self.dtype,
                log=self.input_transform == "log")
        return self._cache[key]

    def nu_at(self, resolution: int) -> np.ndarray:
        """Raw diffusivity fields ``(N, 1, *R)`` for the energy loss (cached)."""
        key = (resolution, "nu")
        if key not in self._cache:
            grid = UniformGrid(self.ndim, resolution)
            self._cache[key] = self.field.evaluate_batch(
                self.omegas, grid, dtype=self.dtype, log=False)
        return self._cache[key]

    def clear_cache(self, resolution: int | None = None) -> None:
        if resolution is None:
            self._cache.clear()
        else:
            for kind in ("in", "nu"):
                self._cache.pop((resolution, kind), None)

    # ------------------------------------------------------------------ #
    def padded_to_multiple(self, multiple: int) -> "DiffusivityDataset":
        """Dataset augmented so ``len`` is divisible by ``multiple``.

        Implements the paper's augmentation step: 'we start by augmenting
        the dataset to make the total number of training samples Ns
        divisible by the number of workers p' (Sec. 3.2) — samples are
        repeated cyclically from the beginning.
        """
        n = len(self)
        if n % multiple == 0:
            return self
        extra = multiple - (n % multiple)
        omegas = np.concatenate([self.omegas, self.omegas[:extra]], axis=0)
        return DiffusivityDataset(self.field, 0, dtype=self.dtype,
                                  input_transform=self.input_transform,
                                  omegas=omegas)

    def subset(self, indices: np.ndarray) -> "DiffusivityDataset":
        return DiffusivityDataset(self.field, 0, dtype=self.dtype,
                                  input_transform=self.input_transform,
                                  omegas=self.omegas[np.asarray(indices)])
