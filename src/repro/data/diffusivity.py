"""The parametric log-permeability diffusivity family of Eq. 10.

    nu(x; omega) = exp( sum_{i=1}^{m} omega_i * lambda_i * xi_i(x) * eta_i(y) [* zeta_i(z)] )

with a = (1.72, 4.05, 6.85, 9.82), lambda_i = 1 / (1 + 0.25 a_i^2) and
xi_i(t) = (a_i / 2) cos(a_i t) + sin(a_i t) (same form for eta and zeta).

The paper states the 2D form; for 3D inputs we use the natural
tensor-product extension with a third factor zeta_i(z) of the same
functional form (documented as a substitution in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fem.grid import UniformGrid

__all__ = ["LogPermeabilityField", "DEFAULT_A"]

DEFAULT_A = (1.72, 4.05, 6.85, 9.82)


@dataclass(frozen=True)
class LogPermeabilityField:
    """Evaluator for the Eq. 10 diffusivity family.

    Parameters
    ----------
    ndim:
        Spatial dimensionality (2 or 3).
    a:
        Frequency parameters a_i; ``m = len(a)`` modes.
    """

    ndim: int
    a: tuple[float, ...] = DEFAULT_A

    def __post_init__(self) -> None:
        if self.ndim not in (1, 2, 3):
            raise ValueError("ndim must be 1, 2 or 3")
        if len(self.a) < 1:
            raise ValueError("need at least one mode")

    @property
    def m(self) -> int:
        return len(self.a)

    @property
    def lambdas(self) -> np.ndarray:
        a = np.asarray(self.a, dtype=np.float64)
        return 1.0 / (1.0 + 0.25 * a * a)

    # ------------------------------------------------------------------ #
    def _mode_1d(self, t: np.ndarray) -> np.ndarray:
        """xi_i(t) for all modes: shape (m, len(t))."""
        a = np.asarray(self.a, dtype=np.float64)[:, None]
        t = np.asarray(t, dtype=np.float64)[None, :]
        return (a / 2.0) * np.cos(a * t) + np.sin(a * t)

    def log_nu(self, omega: np.ndarray, grid: UniformGrid) -> np.ndarray:
        """Log-diffusivity field(s) on ``grid``.

        ``omega``: (m,) for a single field or (B, m) for a batch.
        Returns ``grid.shape`` or ``(B, *grid.shape)``.
        """
        if grid.ndim != self.ndim:
            raise ValueError(f"grid ndim {grid.ndim} != field ndim {self.ndim}")
        omega = np.asarray(omega, dtype=np.float64)
        single = omega.ndim == 1
        omegas = omega[None] if single else omega
        if omegas.shape[1] != self.m:
            raise ValueError(f"omega has {omegas.shape[1]} modes, expected {self.m}")

        ax = grid.axes[0]
        modes = [self._mode_1d(ax) for _ in range(self.ndim)]  # each (m, R)
        # Tensor-product basis: basis[i] = outer product over dims.
        lam = self.lambdas
        # einsum over dims: (m,R) x (m,R) [x (m,R)] -> (m, R, R[, R])
        if self.ndim == 1:
            basis = modes[0]
        elif self.ndim == 2:
            basis = np.einsum("mi,mj->mij", modes[0], modes[1])
        else:
            basis = np.einsum("mi,mj,mk->mijk", modes[0], modes[1], modes[2])
        out = np.tensordot(omegas * lam[None, :], basis, axes=([1], [0]))
        return out[0] if single else out

    def evaluate(self, omega: np.ndarray, grid: UniformGrid) -> np.ndarray:
        """Diffusivity field(s) nu = exp(log_nu)."""
        return np.exp(self.log_nu(omega, grid))

    def evaluate_batch(self, omegas: np.ndarray, grid: UniformGrid,
                       dtype=np.float32, log: bool = False) -> np.ndarray:
        """Batched network-layout fields: ``(B, 1, *grid.shape)``.

        ``log=True`` returns the log-field (the smooth KL-expansion sum),
        which is the default network input transform.
        """
        fields = self.log_nu(omegas, grid)
        if not log:
            fields = np.exp(fields)
        return fields[:, None].astype(dtype)
