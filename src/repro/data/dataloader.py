"""Deterministic mini-batch iteration with worker sharding (Eq. 15).

The global shuffle depends only on ``(seed, epoch)``; each global
mini-batch is split into ``world_size`` equal local mini-batches so the
union of local batches equals the single-worker global batch exactly:

    U_i (LMB)_n^i == (GMB)_n       for every batch index n.

This is the property the paper uses to guarantee worker-count-independent
training, and it is asserted by property-based tests.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["BatchSampler", "shard_batch"]


class BatchSampler:
    """Yields index arrays of global mini-batches for a given epoch."""

    def __init__(self, n_samples: int, batch_size: int, seed: int = 0,
                 shuffle: bool = True, drop_last: bool = False) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.n_samples = n_samples
        self.batch_size = batch_size
        self.seed = seed
        self.shuffle = shuffle
        self.drop_last = drop_last

    def num_batches(self) -> int:
        if self.drop_last:
            return self.n_samples // self.batch_size
        return -(-self.n_samples // self.batch_size)

    def epoch_indices(self, epoch: int) -> np.ndarray:
        idx = np.arange(self.n_samples)
        if self.shuffle:
            rng = np.random.default_rng((self.seed, epoch))
            rng.shuffle(idx)
        return idx

    def batches(self, epoch: int) -> Iterator[np.ndarray]:
        idx = self.epoch_indices(epoch)
        nb = self.num_batches()
        for b in range(nb):
            yield idx[b * self.batch_size:(b + 1) * self.batch_size]


def shard_batch(batch_indices: np.ndarray, world_size: int,
                rank: int | None = None) -> np.ndarray | list[np.ndarray]:
    """Split a global mini-batch into equal local mini-batches.

    With ``rank`` given, returns that worker's shard; otherwise the list of
    all shards.  Requires the batch size to be divisible by ``world_size``
    (guaranteed after dataset augmentation), so local batches always have
    identical sizes — the paper's load-balance argument (Fig. 5).
    """
    bs = len(batch_indices)
    if bs % world_size:
        raise ValueError(
            f"global batch size {bs} not divisible by world size {world_size}")
    local = bs // world_size
    shards = [batch_indices[i * local:(i + 1) * local] for i in range(world_size)]
    if rank is not None:
        return shards[rank]
    return shards
