"""Data pipeline: Sobol sampling, the Eq. 10 diffusivity family, datasets
and deterministic sharded batch iteration."""

from .sobol import SobolSampler, sample_omega
from .diffusivity import LogPermeabilityField, DEFAULT_A
from .dataset import DiffusivityDataset
from .dataloader import BatchSampler, shard_batch
from .augmentation import symmetry_axes, reflect_field, augment_batch

__all__ = [
    "SobolSampler", "sample_omega",
    "LogPermeabilityField", "DEFAULT_A",
    "DiffusivityDataset",
    "BatchSampler", "shard_batch",
    "symmetry_axes", "reflect_field", "augment_batch",
]
