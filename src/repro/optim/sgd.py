"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """Classic SGD: ``v = mu*v + g``, ``p -= lr * v``."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"invalid momentum {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay

    def step(self) -> None:
        self._step_count += 1
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                st = self.state.setdefault(i, {})
                v = st.get("velocity")
                if v is None:
                    v = np.zeros_like(p.data)
                v = self.momentum * v + g
                st["velocity"] = v
                g = v
            p.data -= (self.lr * g).astype(p.data.dtype)
