"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Base class: holds a parameter list and per-parameter state.

    Subclasses implement :meth:`step`, reading ``p.grad`` and updating
    ``p.data`` in place.  State is keyed by parameter index so that
    optimizers survive ``load_state_dict`` on the model (parameter objects
    are mutated in place there, not replaced).
    """

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"invalid learning rate {lr}")
        self.lr = float(lr)
        self.state: dict[int, dict[str, np.ndarray]] = {}
        self._step_count = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def add_param_group(self, params: Sequence[Parameter]) -> None:
        """Register additional parameters (used by architectural
        adaptation, which appends freshly initialized layers mid-run)."""
        self.params.extend(params)

    def sync_params(self, module) -> None:
        """Re-collect parameters from a module after structural surgery.

        Preserves state of surviving parameters (matched by identity) and
        initializes fresh state for new ones.
        """
        new_params = list(module.parameters())
        old_ids = {id(p): i for i, p in enumerate(self.params)}
        new_state: dict[int, dict[str, np.ndarray]] = {}
        for j, p in enumerate(new_params):
            if id(p) in old_ids:
                i = old_ids[id(p)]
                if i in self.state:
                    new_state[j] = self.state[i]
        self.params = new_params
        self.state = new_state
