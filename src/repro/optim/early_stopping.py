"""Early stopping — the paper's convergence criterion for prolongation
phases of multigrid training ("trained until the loss plateaus").
"""

from __future__ import annotations

import math

__all__ = ["EarlyStopping"]


class EarlyStopping:
    """Stop when the monitored loss fails to improve for ``patience`` epochs.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving epochs tolerated.
    min_delta:
        Relative improvement below which an epoch counts as non-improving.
    min_epochs:
        Never stop before this many observations.
    """

    def __init__(self, patience: int = 10, min_delta: float = 1e-3,
                 min_epochs: int = 0) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.min_epochs = min_epochs
        self.best = math.inf
        self.best_epoch = -1
        self.count = 0
        self.epoch = 0
        self.stopped = False

    def update(self, loss: float) -> bool:
        """Record one epoch's loss; return True when training should stop."""
        self.epoch += 1
        threshold = self.best * (1.0 - self.min_delta) if math.isfinite(self.best) else math.inf
        if loss < threshold:
            self.best = loss
            self.best_epoch = self.epoch
            self.count = 0
        else:
            self.count += 1
        if self.epoch >= self.min_epochs and self.count >= self.patience:
            self.stopped = True
        return self.stopped

    def reset(self) -> None:
        self.best = math.inf
        self.best_epoch = -1
        self.count = 0
        self.epoch = 0
        self.stopped = False
