"""Adam optimizer (Kingma & Ba, 2015) — the optimizer used throughout the
paper's experiments (lr 1e-5 for the multigrid study, 1e-4 for scaling).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["Adam"]


class Adam(Optimizer):
    """Adam with bias correction.

    m = b1*m + (1-b1)*g ;  v = b2*v + (1-b2)*g^2
    p -= lr * m_hat / (sqrt(v_hat) + eps)
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not 0.0 <= b1 < 1.0 or not 0.0 <= b2 < 1.0:
            raise ValueError(f"invalid betas {betas}")
        self.betas = (float(b1), float(b2))
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)

    def step(self) -> None:
        self._step_count += 1
        b1, b2 = self.betas
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            st = self.state.setdefault(i, {})
            if "m" not in st:
                st["m"] = np.zeros_like(p.data)
                st["v"] = np.zeros_like(p.data)
                st["t"] = 0
            st["t"] += 1
            t = st["t"]
            st["m"] = b1 * st["m"] + (1 - b1) * g
            st["v"] = b2 * st["v"] + (1 - b2) * (g * g)
            m_hat = st["m"] / (1 - b1 ** t)
            v_hat = st["v"] / (1 - b2 ** t)
            p.data -= (self.lr * m_hat / (np.sqrt(v_hat) + self.eps)).astype(p.data.dtype)
