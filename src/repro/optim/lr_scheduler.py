"""Learning-rate schedulers."""

from __future__ import annotations

import math

from .optimizer import Optimizer

__all__ = ["LRScheduler", "StepLR", "ExponentialLR", "CosineAnnealingLR"]


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr


class StepLR(LRScheduler):
    """Multiply the lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** (self.epoch // self.step_size))


class ExponentialLR(LRScheduler):
    """lr = base * gamma^epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.99) -> None:
        super().__init__(optimizer)
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** self.epoch)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from base lr to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        t = min(self.epoch, self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1 + math.cos(math.pi * t / self.t_max))
