"""Optimization: SGD/Adam, LR schedules, early stopping."""

from .optimizer import Optimizer
from .sgd import SGD
from .adam import Adam
from .lr_scheduler import LRScheduler, StepLR, ExponentialLR, CosineAnnealingLR
from .early_stopping import EarlyStopping

__all__ = [
    "Optimizer", "SGD", "Adam",
    "LRScheduler", "StepLR", "ExponentialLR", "CosineAnnealingLR",
    "EarlyStopping",
]
