"""Multigrid training machinery: hierarchies, field transfer, cycle
schedules (V / W / F / Half-V)."""

from .hierarchy import GridHierarchy
from .transfer import resample_linear, restrict_field, prolong_field
from .cycles import CycleStep, cycle_levels, build_schedule, STRATEGIES
from .fmg import full_multigrid_solve, FMGResult

__all__ = [
    "GridHierarchy",
    "resample_linear", "restrict_field", "prolong_field",
    "CycleStep", "cycle_levels", "build_schedule", "STRATEGIES",
    "full_multigrid_solve", "FMGResult",
]
