"""Field transfer between (non-nested) training resolutions.

Training levels are uniform grids with R, R/2, ... nodes over the same
unit domain, so coarse nodes do not coincide with fine nodes.  Transfer is
separable linear resampling — exact for multilinear fields and the right
notion of restriction/prolongation for *function values* (solution and
coefficient fields).  The paper uses the trained network's forward pass as
the prolongation of the solution; these operators move the data.
"""

from __future__ import annotations

import numpy as np

from ..backend import ops as B

__all__ = ["resample_linear", "restrict_field", "prolong_field"]


def _resample_axis(arr: np.ndarray, axis: int, new_size: int) -> np.ndarray:
    """Linear interpolation along one axis from n to new_size points,
    endpoints preserved."""
    arr = B.moveaxis(arr, axis, 0)
    n = arr.shape[0]
    if n == new_size:
        return B.moveaxis(arr, 0, axis)
    if n < 2:
        raise ValueError("axis must have at least 2 points")
    pos = np.linspace(0.0, n - 1.0, new_size)
    lo = B.clip(B.floor(pos).astype(int), 0, n - 2)
    w = (pos - lo).reshape((-1,) + (1,) * (arr.ndim - 1))
    out = (1.0 - w) * arr[lo] + w * arr[lo + 1]
    return B.moveaxis(out.astype(arr.dtype), 0, axis)


def resample_linear(field: np.ndarray, new_resolution: int,
                    spatial_axes: tuple[int, ...] | None = None) -> np.ndarray:
    """Separable linear resampling of nodal fields to a new resolution.

    ``spatial_axes`` defaults to all axes; pass e.g. ``(2, 3)`` for batched
    (N, C, H, W) arrays.
    """
    axes = spatial_axes if spatial_axes is not None else tuple(range(field.ndim))
    out = field
    for ax in axes:
        out = _resample_axis(out, ax, new_resolution)
    return out


def restrict_field(field: np.ndarray, factor: int = 2,
                   spatial_axes: tuple[int, ...] | None = None) -> np.ndarray:
    """Restrict a nodal field to a ``factor``-times coarser level."""
    axes = spatial_axes if spatial_axes is not None else tuple(range(field.ndim))
    new_res = field.shape[axes[0]] // factor
    for ax in axes:
        if field.shape[ax] != field.shape[axes[0]]:
            raise ValueError("anisotropic fields not supported")
    return resample_linear(field, new_res, axes)


def prolong_field(field: np.ndarray, factor: int = 2,
                  spatial_axes: tuple[int, ...] | None = None) -> np.ndarray:
    """Prolong a nodal field to a ``factor``-times finer level."""
    axes = spatial_axes if spatial_axes is not None else tuple(range(field.ndim))
    new_res = field.shape[axes[0]] * factor
    for ax in axes:
        if field.shape[ax] != field.shape[axes[0]]:
            raise ValueError("anisotropic fields not supported")
    return resample_linear(field, new_res, axes)
