"""Resolution hierarchies for multigrid training.

Level 1 is the finest resolution (paper convention, Fig. 3); level L the
coarsest.  Each level halves the voxel resolution: R, R/2, R/4, ...
Unlike the nested (2^k + 1) grids of the GMG *solver*, training levels are
independent discretizations of the same continuous domain — the fully
convolutional network consumes each directly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GridHierarchy"]


@dataclass(frozen=True)
class GridHierarchy:
    """Resolutions of a multigrid training hierarchy.

    Parameters
    ----------
    finest_resolution:
        Voxel resolution of level 1; must be divisible by
        ``2**(levels - 1)``.
    levels:
        Number of levels (paper uses 3 or 4).
    min_resolution:
        Lower bound for the coarsest level (the network's
        ``2**depth`` divisibility requirement).
    """

    finest_resolution: int
    levels: int
    min_resolution: int = 4

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ValueError("levels must be >= 1")
        div = 2 ** (self.levels - 1)
        if self.finest_resolution % div:
            raise ValueError(
                f"finest resolution {self.finest_resolution} not divisible "
                f"by 2**(levels-1) = {div}")
        if self.coarsest_resolution < self.min_resolution:
            raise ValueError(
                f"coarsest level resolution {self.coarsest_resolution} < "
                f"minimum {self.min_resolution}")

    def resolution(self, level: int) -> int:
        """Voxel resolution of ``level`` (1 = finest)."""
        if not 1 <= level <= self.levels:
            raise ValueError(f"level {level} out of range [1, {self.levels}]")
        return self.finest_resolution // (2 ** (level - 1))

    @property
    def resolutions(self) -> list[int]:
        return [self.resolution(l) for l in range(1, self.levels + 1)]

    @property
    def coarsest_resolution(self) -> int:
        return self.finest_resolution // (2 ** (self.levels - 1))

    def __iter__(self):
        return iter(range(1, self.levels + 1))
