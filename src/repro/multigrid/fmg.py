"""Full Multigrid (FMG) driver for the GMG solver substrate.

FMG solves the problem on the coarsest grid first and prolongs the
*solution* as the initial guess for the next finer level — the numerical
analogue of the Half-V training cycle (coarse first, no fine work until
the coarse levels are converged), which is exactly the connection the
paper draws in Sec. 2.3/3.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fem.gmg import GeometricMultigrid
from ..fem.grid import UniformGrid
from ..fem.solver import DirichletBC
from ..fem.transfer import prolong_nested

__all__ = ["FMGResult", "full_multigrid_solve"]


@dataclass
class FMGResult:
    """Per-level record of an FMG solve."""

    resolutions: list[int]
    cycles_per_level: list[int]
    final_residual: float


def _restrict_problem(nu: np.ndarray, bc: DirichletBC, times: int
                      ) -> tuple[np.ndarray, DirichletBC]:
    """Injection-restrict ν and the Dirichlet data ``times`` levels."""
    sl = tuple(slice(None, None, 2) for _ in range(nu.ndim))
    for _ in range(times):
        nu = nu[sl]
        bc = DirichletBC(mask=bc.mask[sl], values=bc.values[sl])
    return nu, bc


def full_multigrid_solve(grid: UniformGrid, nu_nodal: np.ndarray,
                         bc: DirichletBC, f_nodal: np.ndarray | None = None,
                         levels: int = 3, tol: float = 1e-9,
                         max_cycles: int = 30
                         ) -> tuple[np.ndarray, FMGResult]:
    """FMG: solve coarse-to-fine, prolonging solutions as initial guesses.

    Requires ``grid.resolution - 1`` divisible by ``2**(levels-1)`` so all
    levels nest.  Returns the fine solution and per-level cycle counts —
    which should be *small on the fine levels* (that is the point).
    """
    nu = np.asarray(nu_nodal, dtype=np.float64)
    for lvl in range(levels - 1):
        if (grid.resolution - 1) % (2 ** (lvl + 1)):
            raise ValueError(
                f"resolution {grid.resolution} does not nest {levels} levels")

    # Build the ladder of problems, coarsest first.
    ladder: list[tuple[UniformGrid, np.ndarray, DirichletBC]] = []
    g = grid
    for lvl in range(levels):
        nu_l, bc_l = _restrict_problem(nu, bc, lvl)
        ladder.append((UniformGrid(grid.ndim,
                                   (grid.resolution - 1) // 2 ** lvl + 1),
                       nu_l, bc_l))
    ladder.reverse()

    u = None
    cycles = []
    last_res = 1.0
    for g_l, nu_l, bc_l in ladder:
        gmg = GeometricMultigrid(g_l, nu_l, bc_l)
        f_l = None
        if f_nodal is not None:
            # Sample the forcing at this level's nodes.
            stride = (grid.resolution - 1) // (g_l.resolution - 1)
            sl = tuple(slice(None, None, stride) for _ in range(grid.ndim))
            f_l = np.asarray(f_nodal)[sl]
        x0 = None if u is None else prolong_nested(u)
        u = gmg.solve(f_nodal=f_l, tol=tol, max_cycles=max_cycles,
                      cycle="v", x0=x0)
        cycles.append(gmg.last_report.iterations)
        last_res = gmg.last_report.residual

    return u, FMGResult(resolutions=[g_l.resolution for g_l, _, _ in ladder],
                        cycles_per_level=cycles, final_residual=last_res)
