"""Multigrid training cycle schedules (paper Fig. 3 / Sec. 3.1.2).

A schedule is a sequence of :class:`CycleStep` visits.  Training semantics
(Sec. 3.1.2, last paragraph):

* **restriction** visits train for a *fixed number of epochs* (convergence
  is unnecessary early on);
* **prolongation** visits train *until convergence* (early stopping).

Our generators mark the **last** visit of each level as a prolongation
visit and all earlier visits as restriction visits, which realizes that
rule for every cycle shape.

Cycle shapes over L levels (1 = finest):

* ``V``      : 1 2 ... L ... 2 1
* ``half_v`` : L L-1 ... 1           (no training before the coarsest)
* ``W``      : recursive gamma=2, e.g. L=3: 1 2 3 2 3 2 1
* ``F``      : V-shaped descent with a dip to the coarsest after each
  level is reached on the way up, e.g. L=4: 1 2 3 4 3 4 3 2 3 4 3 2 1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["CycleStep", "cycle_levels", "build_schedule", "STRATEGIES"]

STRATEGIES = ("v", "w", "f", "half_v")


@dataclass(frozen=True)
class CycleStep:
    """One visit of the schedule: a level and its training phase."""

    level: int
    phase: str  # "restriction" (fixed epochs) or "prolongation" (converge)

    def __post_init__(self) -> None:
        if self.phase not in ("restriction", "prolongation"):
            raise ValueError(f"unknown phase {self.phase!r}")


def _merge_adjacent(seq: list[int]) -> list[int]:
    out: list[int] = []
    for level in seq:
        if not out or out[-1] != level:
            out.append(level)
    return out


def _v_levels(levels: int) -> list[int]:
    down = list(range(1, levels + 1))
    up = list(range(levels - 1, 0, -1))
    return down + up


def _half_v_levels(levels: int) -> list[int]:
    return list(range(levels, 0, -1))


def _w_levels(levels: int) -> list[int]:
    def rec(l: int) -> list[int]:
        if l == levels:
            return [levels]
        return [l] + rec(l + 1) + rec(l + 1) + [l]

    return _merge_adjacent(rec(1))


def _f_levels(levels: int) -> list[int]:
    def v(l: int) -> list[int]:
        if l == levels:
            return [levels]
        return [l] + v(l + 1) + [l]

    def f(l: int) -> list[int]:
        if l == levels:
            return [levels]
        return [l] + f(l + 1) + v(l + 1) + [l]

    return _merge_adjacent(f(1))


def cycle_levels(strategy: str, levels: int) -> list[int]:
    """Level visit order of a strategy (1 = finest)."""
    if levels < 1:
        raise ValueError("levels must be >= 1")
    strategy = strategy.lower().replace("-", "_").replace(" ", "_")
    if strategy in ("v", "v_cycle"):
        return _v_levels(levels)
    if strategy in ("w", "w_cycle"):
        return _w_levels(levels)
    if strategy in ("f", "f_cycle"):
        return _f_levels(levels)
    if strategy in ("half_v", "halfv", "half_v_cycle"):
        return _half_v_levels(levels)
    raise ValueError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")


def build_schedule(strategy: str, levels: int) -> list[CycleStep]:
    """Full schedule with phases assigned.

    The final visit of each level trains to convergence (prolongation);
    earlier visits use a fixed epoch budget (restriction).
    """
    seq = cycle_levels(strategy, levels)
    last_visit = {level: max(i for i, l in enumerate(seq) if l == level)
                  for level in set(seq)}
    return [CycleStep(level=l,
                      phase="prolongation" if i == last_visit[l] else "restriction")
            for i, l in enumerate(seq)]
