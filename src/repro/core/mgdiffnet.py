"""MGDiffNet: the paper's neural PDE solver.

A fully convolutional U-Net mapping a discretized coefficient field to the
full-field solution, with *exact* Dirichlet imposition by characteristic-
function masking (Algorithm 1 line 8):

    U = U_int * chi_int + U_bc * chi_b

The Sigmoid output head keeps raw predictions in [0, 1], matching the
canonical boundary data.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, no_grad
from ..nn.module import Module
from ..nn.unet import UNet
from ..utils.seeding import make_rng

__all__ = ["MGDiffNet"]


class MGDiffNet(Module):
    """U-Net + exact-BC masking.

    Parameters mirror :class:`repro.nn.UNet`; ``forward`` takes the input
    field batch and the problem's BC masks at the matching resolution.
    """

    def __init__(self, ndim: int, base_filters: int = 16, depth: int = 3,
                 negative_slope: float = 0.01, downsample: str = "conv",
                 use_batchnorm: bool = True,
                 rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        self.ndim = ndim
        self.net = UNet(ndim=ndim, in_channels=1, out_channels=1,
                        base_filters=base_filters, depth=depth,
                        negative_slope=negative_slope, downsample=downsample,
                        use_batchnorm=use_batchnorm,
                        final_activation="sigmoid", rng=make_rng(rng))

    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor, chi_int: np.ndarray, u_bc: np.ndarray) -> Tensor:
        """Predict the solution field with Dirichlet data imposed exactly.

        Parameters
        ----------
        x:
            Input fields, shape (N, 1, \\*spatial).
        chi_int, u_bc:
            Masks from :meth:`repro.core.problem.PoissonProblem.masks` at
            the same resolution, shape (1, 1, \\*spatial).
        """
        u_int = self.net(x)
        return u_int * Tensor(np.asarray(chi_int, dtype=x.dtype.type)) + \
            Tensor(np.asarray(u_bc, dtype=x.dtype.type))

    # ------------------------------------------------------------------ #
    def predict(self, problem, omega: np.ndarray,
                resolution: int | None = None) -> np.ndarray:
        """Full-field inference for one parameter vector ω.

        Applies the dataset input transform ('log'), runs the network in
        eval mode under ``no_grad`` and returns the nodal field.
        """
        r = resolution or problem.resolution
        grid = problem.grid(r)
        log_nu = problem.field.log_nu(np.asarray(omega), grid)
        x = Tensor(log_nu[None, None].astype(np.float32))
        chi_int, u_bc = problem.masks(r)
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                u = self.forward(x, chi_int, u_bc)
        finally:
            self.train(was_training)
        return u.data[0, 0].copy()

    def adapt(self, rng: np.random.Generator | int | None = None) -> None:
        """Architectural adaptation (Sec. 4.1.2); see
        :meth:`repro.nn.UNet.adapt_decoder`."""
        self.net.adapt_decoder(rng)

    @property
    def min_resolution(self) -> int:
        return self.net.min_resolution

    @property
    def num_weights(self) -> int:
        """Model parameter count — the paper's ``Nw`` in the ring
        all-reduce complexity ``O(Nw + log p)``."""
        return self.num_parameters()
