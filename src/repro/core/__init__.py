"""Core: the MGDiffNet model, problems, trainers, metrics and inference."""

from .problem import PoissonProblem, PoissonProblem2D, PoissonProblem3D
from .mgdiffnet import MGDiffNet
from .trainer import Trainer, TrainConfig, TrainResult
from .mg_trainer import (MultigridTrainer, MGTrainConfig, MGResult,
                         LevelRecord)
from .metrics import FieldErrors, compare_fields, relative_l2, linf_error, mae
from .inference import InferenceTiming, time_inference_vs_fem, predict_batch
from .checkpoint import save_checkpoint, load_checkpoint
from .penalty import BoundaryPenaltyLoss
from .validation import Validator, ValidationResult

__all__ = [
    "save_checkpoint", "load_checkpoint",
    "BoundaryPenaltyLoss",
    "Validator", "ValidationResult",
    "PoissonProblem", "PoissonProblem2D", "PoissonProblem3D",
    "MGDiffNet",
    "Trainer", "TrainConfig", "TrainResult",
    "MultigridTrainer", "MGTrainConfig", "MGResult", "LevelRecord",
    "FieldErrors", "compare_fields", "relative_l2", "linf_error", "mae",
    "InferenceTiming", "time_inference_vs_fem", "predict_batch",
]
