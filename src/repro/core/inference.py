"""Inference helpers and the FEM-vs-network timing comparison (Sec. 4.3)."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, no_grad
from ..fem.solver import FEMSolver
from .mgdiffnet import MGDiffNet
from .problem import PoissonProblem

__all__ = ["InferenceTiming", "time_inference_vs_fem", "predict_batch"]


@dataclass(frozen=True)
class InferenceTiming:
    """Timing of one network forward pass vs one FEM solve."""

    resolution: int
    inference_seconds: float
    fem_seconds: float

    @property
    def speedup(self) -> float:
        return self.fem_seconds / max(self.inference_seconds, 1e-12)


def predict_batch(model: MGDiffNet, problem: PoissonProblem,
                  omegas: np.ndarray,
                  resolution: int | None = None) -> np.ndarray:
    """Full-field predictions for a batch of ω, shape (B, *grid.shape)."""
    r = resolution or problem.resolution
    grid = problem.grid(r)
    omegas = np.atleast_2d(np.asarray(omegas, dtype=np.float64))
    log_nu = problem.field.log_nu(omegas, grid)[:, None].astype(np.float32)
    chi_int, u_bc = problem.masks(r)
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            u = model(Tensor(log_nu), chi_int, u_bc)
    finally:
        model.train(was_training)
    return u.data[:, 0].copy()


def time_inference_vs_fem(model: MGDiffNet, problem: PoissonProblem,
                          omega: np.ndarray, resolution: int | None = None,
                          fem_method: str = "auto",
                          repeats: int = 3) -> InferenceTiming:
    """Measure one forward pass vs one FEM solve at the same resolution.

    The paper reports ~5 min FEM vs < 30 s inference at 128^3; at our
    downscaled sizes the *ratio* is the reproduced quantity.
    """
    r = resolution or problem.resolution

    # Warm-up then best-of-N for the forward pass.
    model.predict(problem, omega, r)
    t_inf = min(_timed(lambda: model.predict(problem, omega, r))
                for _ in range(repeats))

    solver = FEMSolver(problem.grid(r))
    nu = problem.nu(omega, r)
    bc = problem.bc(r)
    t_fem = min(_timed(lambda: solver.solve(nu, bc, method=fem_method))
                for _ in range(repeats))
    return InferenceTiming(resolution=r, inference_seconds=t_inf,
                           fem_seconds=t_fem)


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
