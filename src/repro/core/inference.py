"""Inference helpers and the FEM-vs-network timing comparison (Sec. 4.3)."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, no_grad
from ..fem.solver import FEMSolver
from .mgdiffnet import MGDiffNet
from .problem import PoissonProblem

__all__ = ["InferenceTiming", "time_inference_vs_fem", "predict_batch",
           "prepare_batch_inputs", "apply_bc_masks"]


@dataclass(frozen=True)
class InferenceTiming:
    """Timing of one network forward pass vs one FEM solve."""

    resolution: int
    inference_seconds: float
    fem_seconds: float

    @property
    def speedup(self) -> float:
        return self.fem_seconds / max(self.inference_seconds, 1e-12)


def prepare_batch_inputs(problem: PoissonProblem, omegas: np.ndarray,
                         resolution: int | None = None
                         ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Network input batch and BC masks for full-field inference.

    The single source of the inference input transform — shared by the
    one-shot path below and the tiled megavoxel path in
    :mod:`repro.serve.tiling`, so the two can never diverge.  Returns
    ``(log_nu, chi_int, u_bc)`` with ``log_nu`` of shape (B, 1, *grid).
    """
    r = resolution or problem.resolution
    grid = problem.grid(r)
    omegas = np.atleast_2d(np.asarray(omegas, dtype=np.float64))
    log_nu = problem.field.log_nu(omegas, grid)[:, None].astype(np.float32)
    chi_int, u_bc = problem.masks(r)
    return log_nu, chi_int, u_bc


def apply_bc_masks(u_net: np.ndarray, chi_int: np.ndarray,
                   u_bc: np.ndarray) -> np.ndarray:
    """Dirichlet masking epilogue (Algorithm 1 line 8), NumPy flavour.

    Mirrors the Tensor expression inside :meth:`MGDiffNet.forward`; used
    by inference paths that run the bare network (e.g. per tile) and
    impose the boundary data afterwards.  Returns shape (B, *grid).
    """
    u = u_net * chi_int.astype(u_net.dtype) + u_bc.astype(u_net.dtype)
    return u[:, 0].copy()


def predict_batch(model: MGDiffNet, problem: PoissonProblem,
                  omegas: np.ndarray,
                  resolution: int | None = None) -> np.ndarray:
    """Full-field predictions for a batch of ω, shape (B, *grid.shape)."""
    log_nu, chi_int, u_bc = prepare_batch_inputs(problem, omegas, resolution)
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            u = model(Tensor(log_nu), chi_int, u_bc)
    finally:
        model.train(was_training)
    # .numpy() is the serve-boundary realize barrier for the lazy backend.
    return u.numpy()[:, 0].copy()


def time_inference_vs_fem(model: MGDiffNet, problem: PoissonProblem,
                          omega: np.ndarray, resolution: int | None = None,
                          fem_method: str = "auto",
                          repeats: int = 3) -> InferenceTiming:
    """Measure one forward pass vs one FEM solve at the same resolution.

    The paper reports ~5 min FEM vs < 30 s inference at 128^3; at our
    downscaled sizes the *ratio* is the reproduced quantity.
    """
    r = resolution or problem.resolution

    # Warm-up then best-of-N for the forward pass.
    model.predict(problem, omega, r)
    t_inf = min(_timed(lambda: model.predict(problem, omega, r))
                for _ in range(repeats))

    solver = FEMSolver(problem.grid(r))
    nu = problem.nu(omega, r)
    bc = problem.bc(r)
    t_fem = min(_timed(lambda: solver.solve(nu, bc, method=fem_method))
                for _ in range(repeats))
    return InferenceTiming(resolution=r, inference_seconds=t_inf,
                           fem_seconds=t_fem)


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
