"""Held-out validation of trained solvers.

Tracks what the paper's tables actually report: the energy loss on unseen
parameter vectors and the agreement with the traditional FEM solver —
the generalization evidence for a *parametric* PDE surrogate (the paper's
limitation 2 of pointwise PINNs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, no_grad
from ..data.sobol import sample_omega
from .metrics import FieldErrors, compare_fields
from .mgdiffnet import MGDiffNet
from .problem import PoissonProblem

__all__ = ["ValidationResult", "Validator"]


@dataclass
class ValidationResult:
    """Aggregate validation metrics over held-out omegas."""

    resolution: int
    n_samples: int
    mean_energy: float
    mean_rel_l2: float
    max_rel_l2: float
    mean_linf: float

    def __str__(self) -> str:
        return (f"val[{self.n_samples}@{self.resolution}]: "
                f"energy={self.mean_energy:.5f} "
                f"relL2={self.mean_rel_l2:.4f} (max {self.max_rel_l2:.4f}) "
                f"Linf={self.mean_linf:.4f}")


class Validator:
    """Evaluates a model on held-out Sobol samples with FEM references.

    The omegas are drawn from a *disjoint* stretch of the Sobol sequence
    (skipping past the training range), and FEM references are solved
    once and cached.
    """

    def __init__(self, problem: PoissonProblem, n_samples: int = 8,
                 resolution: int | None = None, skip: int = 100_000) -> None:
        self.problem = problem
        self.resolution = resolution or problem.resolution
        self.omegas = sample_omega(n_samples, m=problem.field.m,
                                   omega_range=problem.omega_range,
                                   skip=skip)
        self._references: list[np.ndarray] | None = None

    @property
    def references(self) -> list[np.ndarray]:
        if self._references is None:
            self._references = [
                self.problem.fem_solve(omega, self.resolution)
                for omega in self.omegas]
        return self._references

    # ------------------------------------------------------------------ #
    def evaluate(self, model: MGDiffNet) -> ValidationResult:
        r = self.resolution
        grid = self.problem.grid(r)
        energy = self.problem.energy(r, reduction="mean")
        chi_int, u_bc = self.problem.masks(r)

        log_nu = self.problem.field.log_nu(self.omegas, grid)
        nu = np.exp(log_nu)[:, None].astype(np.float32)
        x = Tensor(log_nu[:, None].astype(np.float32))

        was_training = model.training
        model.eval()
        try:
            with no_grad():
                u = model(x, chi_int, u_bc)
                j = float(energy(u, nu).data)
        finally:
            model.train(was_training)

        errors: list[FieldErrors] = [
            compare_fields(u.data[i, 0], ref)
            for i, ref in enumerate(self.references)]
        return ValidationResult(
            resolution=r,
            n_samples=len(self.omegas),
            mean_energy=j,
            mean_rel_l2=float(np.mean([e.rel_l2 for e in errors])),
            max_rel_l2=float(np.max([e.rel_l2 for e in errors])),
            mean_linf=float(np.mean([e.linf for e in errors])),
        )
