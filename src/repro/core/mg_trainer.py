"""Multigrid training of MGDiffNet (Sec. 3.1.2 / 4.1 of the paper).

Executes a V / W / F / Half-V schedule over a resolution hierarchy:
restriction visits train a fixed number of epochs, prolongation visits
train to convergence, and (optionally) the architecture is adapted each
time training moves to a finer level (Sec. 4.1.2).  Records everything
needed for Table 1, Table 2, Fig. 7 and Fig. 8.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..multigrid.cycles import CycleStep, build_schedule
from ..multigrid.hierarchy import GridHierarchy
from ..utils.seeding import make_rng
from .mgdiffnet import MGDiffNet
from .problem import PoissonProblem
from .trainer import TrainConfig, Trainer, TrainResult

__all__ = ["MGTrainConfig", "LevelRecord", "MGResult", "MultigridTrainer"]


@dataclass
class MGTrainConfig(TrainConfig):
    """Training hyperparameters plus multigrid phase budgets."""

    restriction_epochs: int = 4
    max_epochs_per_level: int = 200


@dataclass
class LevelRecord:
    """One schedule visit: level trained, phase, and its outcome."""

    step_index: int
    level: int
    resolution: int
    phase: str
    result: TrainResult
    adapted: bool = False

    @property
    def wall_time(self) -> float:
        return self.result.wall_time


@dataclass
class MGResult:
    """Outcome of one multigrid training run."""

    strategy: str
    levels: int
    records: list[LevelRecord] = field(default_factory=list)
    total_time: float = 0.0

    @property
    def final_loss(self) -> float:
        """Loss at the end of the last finest-level visit."""
        for rec in reversed(self.records):
            if rec.level == 1:
                return rec.result.final_loss
        return self.records[-1].result.final_loss if self.records else float("nan")

    def time_per_level(self) -> dict[int, float]:
        """Wall time spent per level — the data behind Fig. 7."""
        out: dict[int, float] = {}
        for rec in self.records:
            out[rec.level] = out.get(rec.level, 0.0) + rec.wall_time
        return out

    def time_fraction_per_level(self) -> dict[int, float]:
        per = self.time_per_level()
        total = sum(per.values()) or 1.0
        return {k: v / total for k, v in per.items()}

    def loss_history(self) -> list[tuple[int, float, float]]:
        """Flattened (level, cumulative_time, loss) series (Fig. 8)."""
        out: list[tuple[int, float, float]] = []
        t = 0.0
        for rec in self.records:
            for dt, loss in zip(rec.result.epoch_times, rec.result.losses):
                t += dt
                out.append((rec.level, t, loss))
        return out


class MultigridTrainer:
    """Runs one multigrid training cycle over a resolution hierarchy.

    Parameters
    ----------
    model, problem, dataset:
        As for :class:`repro.core.trainer.Trainer`.
    strategy:
        'v' | 'w' | 'f' | 'half_v' (Fig. 3).
    levels:
        Hierarchy depth (paper: 3 or 4).
    adapt:
        Enable architectural adaptation on every move to a finer level
        (Table 2 study).
    """

    def __init__(self, model: MGDiffNet, problem: PoissonProblem, dataset,
                 strategy: str = "half_v", levels: int = 3,
                 config: MGTrainConfig | None = None, adapt: bool = False,
                 adapt_rng: np.random.Generator | int | None = None) -> None:
        self.model = model
        self.problem = problem
        self.dataset = dataset
        self.strategy = strategy
        self.levels = levels
        self.config = config or MGTrainConfig()
        self.adapt = adapt
        self.adapt_rng = make_rng(adapt_rng)
        self.hierarchy = GridHierarchy(problem.resolution, levels,
                                       min_resolution=model.min_resolution)
        self.schedule: list[CycleStep] = build_schedule(strategy, levels)
        self.trainer = Trainer(model, problem, dataset, self.config)

    # ------------------------------------------------------------------ #
    def train(self) -> MGResult:
        result = MGResult(strategy=self.strategy, levels=self.levels)
        start = time.perf_counter()
        prev_level: int | None = None
        for i, step in enumerate(self.schedule):
            adapted = False
            if (self.adapt and prev_level is not None
                    and step.level < prev_level):
                self.model.adapt(self.adapt_rng)
                self.trainer.sync_optimizer()
                adapted = True
            res = self.hierarchy.resolution(step.level)
            if step.phase == "restriction":
                tr = self.trainer.train_epochs(res, self.config.restriction_epochs)
            else:
                tr = self.trainer.train_until_converged(
                    res, self.config.max_epochs_per_level)
            result.records.append(LevelRecord(
                step_index=i, level=step.level, resolution=res,
                phase=step.phase, result=tr, adapted=adapted))
            prev_level = step.level
        result.total_time = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------ #
    def train_baseline(self) -> TrainResult:
        """Full training at the finest resolution — the paper's 'Base'."""
        return self.trainer.train_until_converged(
            self.hierarchy.resolution(1), self.config.max_epochs_per_level)
