"""Training checkpointing: save/restore model + optimizer state to .npz.

Long multigrid runs on shared clusters need resumability; this module
serializes everything required to continue training bit-for-bit (modulo
the wall clock): model parameters, buffers, Adam/SGD moments, and the
trainer's epoch counter.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..optim.optimizer import Optimizer

__all__ = ["CheckpointError", "save_checkpoint", "load_checkpoint"]

_PREFIX_PARAM = "model::"
_PREFIX_OPT = "opt::"
_PREFIX_META = "meta::"


class CheckpointError(RuntimeError):
    """A checkpoint does not match the model it is being loaded into.

    Raised with the offending parameter/buffer *keys* spelled out (and
    the checkpoint path) instead of letting a bare NumPy broadcast error
    escape from deep inside ``load_state_dict``.
    """


def _validate_model_state(path: Path, model,
                          state: dict[str, np.ndarray]) -> None:
    """Check checkpoint keys and shapes against the model before loading."""
    expected: dict[str, tuple[int, ...]] = {}
    for name, p in model.named_parameters():
        expected[name] = tuple(p.data.shape)
    for name, b in model.named_buffers():
        expected[f"buffer:{name}"] = tuple(np.asarray(b).shape)

    missing = sorted(set(expected) - set(state))
    unexpected = sorted(set(state) - set(expected))
    mismatched = sorted(
        f"{k}: checkpoint {tuple(state[k].shape)} vs model {expected[k]}"
        for k in set(expected) & set(state)
        if tuple(state[k].shape) != expected[k])
    if missing or unexpected or mismatched:
        problems = []
        if mismatched:
            problems.append("shape mismatch [" + "; ".join(mismatched) + "]")
        if missing:
            problems.append("missing keys " + repr(missing))
        if unexpected:
            problems.append("unexpected keys " + repr(unexpected))
        raise CheckpointError(
            f"checkpoint {path} does not fit the model: "
            + "; ".join(problems)
            + " — was it saved from a different architecture "
            "(base_filters/depth/ndim) or after adaptation?")


def save_checkpoint(path: str | Path, model, optimizer: Optimizer | None = None,
                    epoch: int = 0, extra: dict | None = None) -> Path:
    """Serialize model (+ optimizer) state to a single ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, np.ndarray] = {}
    for key, value in model.state_dict().items():
        payload[_PREFIX_PARAM + key] = value
    if optimizer is not None:
        payload[_PREFIX_OPT + "lr"] = np.asarray(optimizer.lr)
        payload[_PREFIX_OPT + "step_count"] = np.asarray(optimizer._step_count)
        for idx, state in optimizer.state.items():
            for name, value in state.items():
                payload[f"{_PREFIX_OPT}{idx}::{name}"] = np.asarray(value)
    payload[_PREFIX_META + "epoch"] = np.asarray(epoch)
    for key, value in (extra or {}).items():
        payload[_PREFIX_META + key] = np.asarray(value)
    np.savez(path, **payload)
    return path


def load_checkpoint(path: str | Path, model, optimizer: Optimizer | None = None
                    ) -> dict:
    """Restore state saved by :func:`save_checkpoint`.

    Returns the metadata dict (always contains ``epoch``).  The model must
    have the same architecture as at save time; the optimizer must hold
    the same parameters in the same order.  A mismatch raises
    :class:`CheckpointError` naming every offending key.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        model_state = {k[len(_PREFIX_PARAM):]: data[k]
                       for k in data.files if k.startswith(_PREFIX_PARAM)}
        _validate_model_state(path, model, model_state)
        model.load_state_dict(model_state)

        if optimizer is not None:
            if _PREFIX_OPT + "lr" in data:
                optimizer.lr = float(data[_PREFIX_OPT + "lr"])
                optimizer._step_count = int(data[_PREFIX_OPT + "step_count"])
            state: dict[int, dict[str, np.ndarray]] = {}
            for k in data.files:
                if not k.startswith(_PREFIX_OPT) or k.count("::") != 2:
                    continue
                _, idx_s, name = k.split("::")
                entry = state.setdefault(int(idx_s), {})
                value = data[k]
                entry[name] = int(value) if name == "t" else value.copy()
            optimizer.state = state

        meta = {}
        for k in data.files:
            if k.startswith(_PREFIX_META):
                value = data[k]
                meta[k[len(_PREFIX_META):]] = (
                    value.item() if value.ndim == 0 else value.copy())
        return meta
