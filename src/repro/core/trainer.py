"""Single-resolution training loop (Algorithm 1 of the paper).

The :class:`Trainer` runs data-free variational training: sample a
mini-batch of coefficient fields, predict, impose BCs exactly, evaluate the
FEM energy loss, and step the optimizer.  It exposes both fixed-epoch
training (multigrid *restriction* phases) and early-stopped training
(*prolongation* phases / baselines).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..autograd import Tensor
from ..data.dataloader import BatchSampler
from ..data.dataset import DiffusivityDataset
from ..optim import Adam, SGD, EarlyStopping, Optimizer
from .mgdiffnet import MGDiffNet
from .problem import PoissonProblem

__all__ = ["TrainConfig", "TrainResult", "Trainer"]


@dataclass
class TrainConfig:
    """Hyperparameters for one training run.

    Paper settings: Adam, lr 1e-5, global batch 64 (multigrid study) /
    lr 1e-4 (scaling study).  The downscaled defaults here train the small
    test networks in seconds; pass paper values explicitly to mimic them.
    """

    batch_size: int = 8
    lr: float = 1e-3
    optimizer: str = "adam"
    weight_decay: float = 0.0
    patience: int = 8
    min_delta: float = 1e-3
    min_epochs: int = 3
    seed: int = 0
    shuffle: bool = True
    log_every: int = 0
    max_time: float | None = None


@dataclass
class TrainResult:
    """Per-phase training record."""

    resolution: int
    losses: list[float] = field(default_factory=list)
    epoch_times: list[float] = field(default_factory=list)
    wall_time: float = 0.0
    epochs_run: int = 0
    stopped_early: bool = False

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def best_loss(self) -> float:
        return min(self.losses) if self.losses else float("nan")


class Trainer:
    """Algorithm 1 driver bound to a (model, problem, dataset) triple."""

    def __init__(self, model: MGDiffNet, problem: PoissonProblem,
                 dataset: DiffusivityDataset,
                 config: TrainConfig | None = None) -> None:
        self.model = model
        self.problem = problem
        self.dataset = dataset
        self.config = config or TrainConfig()
        self.optimizer = self._make_optimizer()
        self.global_epoch = 0  # distinct shuffles across phases

    def _make_optimizer(self) -> Optimizer:
        cfg = self.config
        params = self.model.parameters()
        if cfg.optimizer == "adam":
            return Adam(params, lr=cfg.lr, weight_decay=cfg.weight_decay)
        if cfg.optimizer == "sgd":
            return SGD(params, lr=cfg.lr, weight_decay=cfg.weight_decay)
        raise ValueError(f"unknown optimizer {cfg.optimizer!r}")

    def sync_optimizer(self) -> None:
        """Refresh the optimizer after architectural adaptation."""
        self.optimizer.sync_params(self.model)

    # ------------------------------------------------------------------ #
    def run_epoch(self, resolution: int) -> float:
        """One epoch at the given resolution; returns the mean batch loss."""
        cfg = self.config
        inputs = self.dataset.inputs_at(resolution)
        nus = self.dataset.nu_at(resolution)
        chi_int, u_bc = self.problem.masks(resolution, dtype=inputs.dtype)
        energy = self.problem.energy(resolution, reduction="mean")
        sampler = BatchSampler(len(self.dataset), cfg.batch_size,
                               seed=cfg.seed, shuffle=cfg.shuffle)
        self.model.train()
        total, count = 0.0, 0
        for idx in sampler.batches(self.global_epoch):
            x = Tensor(inputs[idx])
            u = self.model(x, chi_int, u_bc)
            loss = energy(u, nus[idx])
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            total += float(loss.data) * len(idx)
            count += len(idx)
        self.global_epoch += 1
        return total / max(count, 1)

    def evaluate_loss(self, resolution: int) -> float:
        """Mean energy over the dataset without updating weights."""
        from ..autograd import no_grad

        inputs = self.dataset.inputs_at(resolution)
        nus = self.dataset.nu_at(resolution)
        chi_int, u_bc = self.problem.masks(resolution, dtype=inputs.dtype)
        energy = self.problem.energy(resolution, reduction="mean")
        sampler = BatchSampler(len(self.dataset), self.config.batch_size,
                               shuffle=False)
        self.model.eval()
        total, count = 0.0, 0
        with no_grad():
            for idx in sampler.batches(0):
                u = self.model(Tensor(inputs[idx]), chi_int, u_bc)
                total += float(energy(u, nus[idx]).data) * len(idx)
                count += len(idx)
        self.model.train()
        return total / max(count, 1)

    # ------------------------------------------------------------------ #
    def train_epochs(self, resolution: int, n_epochs: int) -> TrainResult:
        """Fixed-epoch training (multigrid restriction phase)."""
        result = TrainResult(resolution=resolution)
        start = time.perf_counter()
        for _ in range(n_epochs):
            t0 = time.perf_counter()
            loss = self.run_epoch(resolution)
            result.epoch_times.append(time.perf_counter() - t0)
            result.losses.append(loss)
            result.epochs_run += 1
            self._maybe_log(result)
            if self._out_of_time(start):
                break
        result.wall_time = time.perf_counter() - start
        return result

    def train_until_converged(self, resolution: int,
                              max_epochs: int = 500) -> TrainResult:
        """Early-stopped training (prolongation phase / baseline)."""
        cfg = self.config
        stopper = EarlyStopping(patience=cfg.patience, min_delta=cfg.min_delta,
                                min_epochs=cfg.min_epochs)
        result = TrainResult(resolution=resolution)
        start = time.perf_counter()
        for _ in range(max_epochs):
            t0 = time.perf_counter()
            loss = self.run_epoch(resolution)
            result.epoch_times.append(time.perf_counter() - t0)
            result.losses.append(loss)
            result.epochs_run += 1
            self._maybe_log(result)
            if stopper.update(loss):
                result.stopped_early = True
                break
            if self._out_of_time(start):
                break
        result.wall_time = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------ #
    def _maybe_log(self, result: TrainResult) -> None:
        le = self.config.log_every
        if le and result.epochs_run % le == 0:
            from ..utils.logging import get_logger

            get_logger().info(
                "res=%d epoch=%d loss=%.6f (%.2fs)", result.resolution,
                result.epochs_run, result.losses[-1], result.epoch_times[-1])

    def _out_of_time(self, start: float) -> bool:
        mt = self.config.max_time
        return mt is not None and (time.perf_counter() - start) >= mt
