"""Field-comparison metrics (Tables 3-5, 7 of the paper, in numbers)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FieldErrors", "compare_fields", "relative_l2", "linf_error", "mae"]


def relative_l2(pred: np.ndarray, ref: np.ndarray) -> float:
    """||pred - ref||_2 / ||ref||_2 over nodal values."""
    ref_n = np.linalg.norm(ref.ravel())
    return float(np.linalg.norm((pred - ref).ravel()) / max(ref_n, 1e-300))


def linf_error(pred: np.ndarray, ref: np.ndarray) -> float:
    return float(np.abs(pred - ref).max())


def mae(pred: np.ndarray, ref: np.ndarray) -> float:
    return float(np.abs(pred - ref).mean())


@dataclass(frozen=True)
class FieldErrors:
    """Bundle of error metrics between a prediction and a reference."""

    rel_l2: float
    linf: float
    mae: float
    ref_range: tuple[float, float]

    def __str__(self) -> str:
        return (f"rel_L2={self.rel_l2:.4f} Linf={self.linf:.4f} "
                f"MAE={self.mae:.4f}")


def compare_fields(pred: np.ndarray, ref: np.ndarray) -> FieldErrors:
    pred = np.asarray(pred, dtype=np.float64)
    ref = np.asarray(ref, dtype=np.float64)
    if pred.shape != ref.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {ref.shape}")
    return FieldErrors(rel_l2=relative_l2(pred, ref),
                       linf=linf_error(pred, ref),
                       mae=mae(pred, ref),
                       ref_range=(float(ref.min()), float(ref.max())))
