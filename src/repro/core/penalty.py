"""Boundary-penalty loss — the PINN-style alternative to exact BC masking.

The paper's first contribution is a variational loss *with exact
imposition of boundary conditions*, motivated by the hyper-parameter
sensitivity of penalty approaches ('the losses have to be carefully
weighed, making this a non-trivial exercise in hyper parameter tuning',
Sec. 1).  This module implements that penalty alternative so the claim
can be tested as an ablation:

    L(u) = J(u) + lambda * mean_{Gamma_D} (u - g)^2

where u is the *unmasked* network output.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..fem.energy import EnergyLoss
from ..fem.solver import DirichletBC

__all__ = ["BoundaryPenaltyLoss"]


class BoundaryPenaltyLoss:
    """Energy + weighted Dirichlet penalty (weak BC enforcement).

    Parameters
    ----------
    energy:
        The interior variational loss.
    bc:
        Dirichlet data to penalize against.
    weight:
        The penalty coefficient lambda — the hyperparameter the paper's
        exact-masking formulation eliminates.
    """

    def __init__(self, energy: EnergyLoss, bc: DirichletBC,
                 weight: float) -> None:
        if weight < 0:
            raise ValueError("penalty weight must be >= 0")
        self.energy = energy
        self.bc = bc
        self.weight = float(weight)
        self._mask = bc.mask[None, None]
        self._values = bc.lift()[None, None]
        self._count = int(bc.mask.sum())

    def __call__(self, u: Tensor, nu: Tensor | np.ndarray) -> Tensor:
        j = self.energy(u, nu)
        mask = Tensor(self._mask.astype(u.dtype.type))
        target = Tensor(self._values.astype(u.dtype.type))
        diff = (u - target) * mask
        n = u.shape[0]
        penalty = (diff * diff).sum() * (1.0 / (self._count * n))
        return j + penalty * self.weight

    def boundary_violation(self, u: np.ndarray) -> float:
        """RMS Dirichlet violation of a batch of predicted fields."""
        diff = (u - self._values) * self._mask
        return float(np.sqrt((diff ** 2).sum() / (self._count * u.shape[0])))
