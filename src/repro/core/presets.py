"""The paper's exact experimental configurations, as code.

These presets document (and make runnable at full scale, given the
hardware) the hyperparameters reported in Sec. 4:

* U-Net: depth 3, base filters 16 doubling with depth, LeakyReLU inner
  activations, Sigmoid head (Sec. 4.1).
* Multigrid study: Adam, lr 1e-5, global batch 64, 65536 Sobol samples,
  up to 4 levels (Sec. 4.1).
* GPU scaling study: 1024 samples at 256^3, local batch 2, Adam lr 1e-4
  (Sec. 4.2.1).
* CPU scaling study: 512^3 on Bridges2, 1 process/node, local batch 2
  (Sec. 4.2.2).

The downscaled defaults used elsewhere in this repository trade the
paper's week-scale budgets for minute-scale ones; these functions are the
ground truth for what the paper actually ran.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .mgdiffnet import MGDiffNet
from .mg_trainer import MGTrainConfig

__all__ = ["PaperScalingSetup", "paper_unet", "paper_multigrid_config",
           "PAPER_GPU_SCALING", "PAPER_CPU_SCALING"]


def paper_unet(ndim: int, rng: np.random.Generator | int | None = None
               ) -> MGDiffNet:
    """The Sec. 4.1 architecture: depth 3, 16 base filters, LeakyReLU,
    Sigmoid output, batch-norm blocks."""
    return MGDiffNet(ndim=ndim, base_filters=16, depth=3,
                     negative_slope=0.01, use_batchnorm=True, rng=rng)


def paper_multigrid_config() -> MGTrainConfig:
    """Sec. 4.1 training hyperparameters (multigrid strategy study)."""
    return MGTrainConfig(
        batch_size=64,          # 'global batch size of 64'
        lr=1e-5,                # 'learning rate of 1e-5'
        optimizer="adam",       # 'Adam optimizer'
        restriction_epochs=4,   # 'trained for a fixed number of epochs'
        max_epochs_per_level=10_000,
        patience=20,            # early-stopping convergence criterion
        min_delta=1e-3,
    )


@dataclass(frozen=True)
class PaperScalingSetup:
    """One strong-scaling experiment of Sec. 4.2."""

    resolution: int
    n_samples: int
    local_batch: int
    lr: float
    max_workers: int
    devices_per_node: int
    cluster: str

    @property
    def global_batch_at(self) -> int:
        return self.local_batch * self.max_workers


#: Fig. 9: 256^3 on Azure NDv2, 1024 maps, local batch 2 (14 GB/sample),
#: Adam lr 1e-4, up to 64 nodes x 8 V100s.
PAPER_GPU_SCALING = PaperScalingSetup(
    resolution=256, n_samples=1024, local_batch=2, lr=1e-4,
    max_workers=512, devices_per_node=8, cluster="azure_ndv2")

#: Fig. 10: 512^3 on PSC Bridges2, 1 MPI process per 128-core node,
#: local batch 2 (230 GB peak/node), up to 128 nodes.
PAPER_CPU_SCALING = PaperScalingSetup(
    resolution=512, n_samples=1024, local_batch=2, lr=1e-4,
    max_workers=128, devices_per_node=1, cluster="bridges2")
