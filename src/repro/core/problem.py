"""Parametric Poisson problem definitions (Sec. 2.2.1 of the paper).

A :class:`PoissonProblem` bundles the domain discretization at its finest
resolution, the canonical boundary conditions (u = 1 at x = 0, u = 0 at
x = 1, zero flux elsewhere), the Eq. 10 diffusivity family, and cached
per-resolution FEM machinery (energy losses, BC masks, reference solvers)
for every multigrid level.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..data.dataset import DiffusivityDataset
from ..data.diffusivity import DEFAULT_A, LogPermeabilityField
from ..fem.energy import EnergyLoss
from ..fem.grid import UniformGrid
from ..fem.solver import DirichletBC, FEMSolver, canonical_bc

__all__ = ["PoissonProblem", "PoissonProblem2D", "PoissonProblem3D"]


class PoissonProblem:
    """Generalized Poisson problem ``-div(nu(x; omega) grad u) = f``.

    Parameters
    ----------
    ndim:
        Spatial dimensionality (2 or 3).
    resolution:
        Finest voxel resolution (nodes per dimension).
    a:
        Mode frequencies of the diffusivity family (Eq. 10).
    omega_range:
        Parameter box, paper default [-3, 3]^m.
    """

    def __init__(self, ndim: int, resolution: int,
                 a: tuple[float, ...] = DEFAULT_A,
                 omega_range: tuple[float, float] = (-3.0, 3.0)) -> None:
        if ndim not in (2, 3):
            raise ValueError("ndim must be 2 or 3")
        self.ndim = ndim
        self.resolution = resolution
        self.omega_range = omega_range
        self.field = LogPermeabilityField(ndim, a)
        self._grids: dict[int, UniformGrid] = {}
        self._bcs: dict[int, DirichletBC] = {}
        self._losses: dict[tuple[int, str], EnergyLoss] = {}
        self._masks: dict[tuple[int, type], tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    def grid(self, resolution: int | None = None) -> UniformGrid:
        r = resolution or self.resolution
        if r not in self._grids:
            self._grids[r] = UniformGrid(self.ndim, r)
        return self._grids[r]

    def bc(self, resolution: int | None = None) -> DirichletBC:
        r = resolution or self.resolution
        if r not in self._bcs:
            self._bcs[r] = canonical_bc(self.grid(r))
        return self._bcs[r]

    def energy(self, resolution: int | None = None,
               reduction: str = "mean") -> EnergyLoss:
        r = resolution or self.resolution
        key = (r, reduction)
        if key not in self._losses:
            self._losses[key] = EnergyLoss(self.grid(r), reduction=reduction)
        return self._losses[key]

    def masks(self, resolution: int | None = None,
              dtype=np.float32) -> tuple[np.ndarray, np.ndarray]:
        """BC masking arrays for Algorithm 1 line 8.

        Returns ``(chi_int, u_bc)`` of shape ``(1, 1, *grid.shape)``:
        ``u = u_net * chi_int + u_bc`` imposes the Dirichlet data exactly
        (``u_bc`` is already multiplied by chi_b).
        """
        r = resolution or self.resolution
        key = (r, np.dtype(dtype).type)
        if key not in self._masks:
            bc = self.bc(r)
            chi_int = bc.interior_indicator()[None, None].astype(dtype)
            u_bc = bc.lift()[None, None].astype(dtype)
            self._masks[key] = (chi_int, u_bc)
        return self._masks[key]

    # ------------------------------------------------------------------ #
    def nu(self, omega: np.ndarray, resolution: int | None = None) -> np.ndarray:
        """Diffusivity field for one ω at the requested resolution."""
        return self.field.evaluate(omega, self.grid(resolution))

    def fem_solve(self, omega: np.ndarray, resolution: int | None = None,
                  method: str = "auto") -> np.ndarray:
        """Reference FEM solution for one ω (ground truth for metrics)."""
        r = resolution or self.resolution
        grid = self.grid(r)
        solver = FEMSolver(grid)
        return solver.solve(self.nu(omega, r), self.bc(r), method=method)

    def make_dataset(self, n_samples: int, skip: int = 1,
                     input_transform: str = "log",
                     dtype=np.float32) -> DiffusivityDataset:
        """Sobol-sampled training dataset over this problem's family."""
        return DiffusivityDataset(self.field, n_samples,
                                  omega_range=self.omega_range, skip=skip,
                                  dtype=dtype, input_transform=input_transform)

    def __repr__(self) -> str:
        return (f"PoissonProblem({self.ndim}d, resolution={self.resolution}, "
                f"m={self.field.m})")


def PoissonProblem2D(resolution: int, **kwargs) -> PoissonProblem:
    """2D convenience constructor."""
    return PoissonProblem(2, resolution, **kwargs)


def PoissonProblem3D(resolution: int, **kwargs) -> PoissonProblem:
    """3D convenience constructor."""
    return PoissonProblem(3, resolution, **kwargs)
