"""repro — reproduction of *Distributed Multigrid Neural Solvers on
Megavoxel Domains* (Balu et al., SC 2021, arXiv:2104.14538).

The package implements, from scratch in NumPy:

* ``repro.backend``     — pluggable array backends, op dispatch, dtype
                          policy, buffer pool, and the conv planner
* ``repro.autograd``    — reverse-mode AD with N-d convolutions
* ``repro.nn``          — Module system and the dimension-agnostic U-Net
* ``repro.optim``       — SGD/Adam, schedulers, early stopping
* ``repro.fem``         — FEM substrate: assembly, solvers, geometric
                          multigrid, and the differentiable energy loss
* ``repro.data``        — Sobol sampling and the Eq. 10 diffusivity family
* ``repro.multigrid``   — resolution hierarchies and V/W/F/Half-V cycles
* ``repro.distributed`` — simulated MPI runtime with ring all-reduce
* ``repro.perf``        — analytic performance model for strong scaling
* ``repro.core``        — MGDiffNet, trainers, metrics, experiments

Quickstart::

    from repro import PoissonProblem2D, MGDiffNet, MultigridTrainer
    from repro.data import DiffusivityDataset

    problem = PoissonProblem2D(resolution=32)
    dataset = DiffusivityDataset(problem, n_samples=32, seed=0)
    model = MGDiffNet(ndim=2, base_filters=8, depth=2)
    trainer = MultigridTrainer(model, problem, dataset, strategy="half_v",
                               levels=3)
    result = trainer.train()
"""

from .version import __version__
from .autograd import Tensor, no_grad

# Heavier subsystems are imported lazily (PEP 562) so that low-level use of
# repro.autograd does not pay for the full stack.
_LAZY = {
    "PoissonProblem": "repro.core.problem",
    "PoissonProblem2D": "repro.core.problem",
    "PoissonProblem3D": "repro.core.problem",
    "MGDiffNet": "repro.core.mgdiffnet",
    "Trainer": "repro.core.trainer",
    "TrainConfig": "repro.core.trainer",
    "MultigridTrainer": "repro.core.mg_trainer",
    "MGTrainConfig": "repro.core.mg_trainer",
    # Array-backend layer (repro.backend)
    "set_backend": "repro.backend",
    "get_backend": "repro.backend",
    "use_backend": "repro.backend",
    "set_default_dtype": "repro.backend",
    "get_default_dtype": "repro.backend",
    "dtype_scope": "repro.backend",
}

__all__ = ["__version__", "Tensor", "no_grad", *sorted(_LAZY)]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
