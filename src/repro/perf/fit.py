"""Power-law fitting for compute-cost extrapolation.

Fig. 2 of the paper shows epoch time growing with resolution; the
extrapolations behind Figs. 9-10 rest on the cost being a power law in
the voxel count.  This module fits ``t = a * dofs^b`` to measured
points (log-log least squares) and reports the exponent, so the
extrapolation assumption is *checked*, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .measure import EpochTimePoint

__all__ = ["PowerLawFit", "fit_power_law"]


@dataclass(frozen=True)
class PowerLawFit:
    """t = coefficient * x^exponent, with goodness of fit."""

    coefficient: float
    exponent: float
    r_squared: float

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        return self.coefficient * np.asarray(x, dtype=np.float64) ** self.exponent


def fit_power_law(xs, ys) -> PowerLawFit:
    """Least-squares fit of ``y = a x^b`` in log-log space.

    Accepts raw sequences or :class:`EpochTimePoint` lists (using dofs
    as x and epoch seconds as y).
    """
    if len(xs) and isinstance(xs[0], EpochTimePoint):
        points = xs
        xs = [p.dofs for p in points]
        ys = [p.epoch_seconds for p in points]
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need >= 2 matching points")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires positive data")
    lx, ly = np.log(x), np.log(y)
    b, log_a = np.polyfit(lx, ly, 1)
    pred = b * lx + log_a
    ss_res = float(((ly - pred) ** 2).sum())
    ss_tot = float(((ly - ly.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(coefficient=float(np.exp(log_a)), exponent=float(b),
                       r_squared=r2)
