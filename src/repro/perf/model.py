"""Analytic performance model for distributed training.

Cost structure (Sec. 3.2 of the paper):

* per step, every worker computes forward+backward on its local mini-batch
  — perfectly parallel;
* gradients are averaged with a ring all-reduce whose time is the classic
  alpha-beta model ``2 (p-1) (alpha + (N/p) / BW)`` — bandwidth-optimal,
  near-independent of p for large messages (the paper's ``O(Nw + log p)``);
* an epoch is ``ceil(Ns / global_batch)`` steps.

Two regimes are supported: *fixed global batch* (classic strong scaling;
steps constant, local batch shrinks) and *fixed local batch* (the paper's
Figs. 9-10 protocol: local batch pinned at 2 by memory, so the global
batch grows and the number of steps per epoch falls with p).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .clusters import ClusterSpec

__all__ = ["ring_allreduce_time", "step_time", "epoch_time",
           "ScalingPoint", "strong_scaling_study", "compute_time_at_resolution"]


def ring_allreduce_time(message_bytes: int, world_size: int,
                        spec: ClusterSpec) -> float:
    """Alpha-beta ring all-reduce time.

    Each of the ``2 (p-1)`` steps moves one ``N/p`` chunk per worker.
    Steps whose partner sits in the same node use the intra-node link when
    the spec has one (hybrid paradigm, Fig. 6): in a ring laid out node by
    node, ``(d-1)/d`` of the hops are intra-node for d devices/node.
    """
    p = world_size
    if p <= 1:
        return 0.0
    chunk = message_bytes / p
    steps = 2 * (p - 1)
    d = spec.devices_per_node
    if d > 1 and spec.intra_node_bandwidth_gbps and p > d:
        intra_frac = (d - 1) / d
        intra_bw = spec.intra_node_bandwidth_gbps * 1e9 / 8.0
        t_intra = chunk / intra_bw + spec.latency_s * 0.1
        t_inter = chunk / spec.bandwidth_bytes_per_s + spec.latency_s
        per_step = intra_frac * t_intra + (1 - intra_frac) * t_inter
    elif d > 1 and spec.intra_node_bandwidth_gbps and p <= d:
        intra_bw = spec.intra_node_bandwidth_gbps * 1e9 / 8.0
        per_step = chunk / intra_bw + spec.latency_s * 0.1
    else:
        per_step = chunk / spec.bandwidth_bytes_per_s + spec.latency_s
    return steps * per_step


def step_time(world_size: int, local_batch: int, t_sample: float,
              n_params: int, spec: ClusterSpec,
              bytes_per_param: int = 4) -> float:
    """One optimizer step: local compute + gradient all-reduce."""
    return (t_sample * local_batch
            + ring_allreduce_time(n_params * bytes_per_param, world_size, spec))


def epoch_time(world_size: int, n_samples: int, t_sample: float,
               n_params: int, spec: ClusterSpec,
               local_batch: int | None = None,
               global_batch: int | None = None,
               bytes_per_param: int = 4) -> float:
    """Wall-clock time of one training epoch.

    Give exactly one of ``local_batch`` (paper protocol: fixed per-worker
    batch) or ``global_batch`` (fixed total batch).
    """
    if (local_batch is None) == (global_batch is None):
        raise ValueError("specify exactly one of local_batch / global_batch")
    if local_batch is not None:
        gb = local_batch * world_size
        lb = local_batch
    else:
        gb = global_batch
        if gb % world_size:
            raise ValueError("global batch must divide by world size")
        lb = gb // world_size
    n_steps = math.ceil(n_samples / gb)
    return n_steps * step_time(world_size, lb, t_sample, n_params, spec,
                               bytes_per_param)


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a strong-scaling curve."""

    world_size: int
    nodes: int
    epoch_seconds: float
    speedup: float
    efficiency: float


def strong_scaling_study(world_sizes: list[int], n_samples: int,
                         t_sample: float, n_params: int, spec: ClusterSpec,
                         local_batch: int | None = 2,
                         global_batch: int | None = None,
                         bytes_per_param: int = 4) -> list[ScalingPoint]:
    """Epoch time / speedup / efficiency across worker counts.

    Defaults follow the paper's protocol (local batch fixed at 2).
    Speedup is relative to the smallest world size in the list.
    """
    times = [epoch_time(p, n_samples, t_sample, n_params, spec,
                        local_batch=local_batch, global_batch=global_batch,
                        bytes_per_param=bytes_per_param)
             for p in world_sizes]
    base_p, base_t = world_sizes[0], times[0]
    out = []
    for p, t in zip(world_sizes, times):
        speedup = base_t / t
        out.append(ScalingPoint(world_size=p, nodes=spec.nodes_for(p),
                                epoch_seconds=t, speedup=speedup,
                                efficiency=speedup / (p / base_p)))
    return out


def compute_time_at_resolution(t_ref: float, r_ref: int, r_target: int,
                               ndim: int) -> float:
    """Extrapolate per-sample compute time across resolutions.

    A fully convolutional network's FLOPs are proportional to the voxel
    count, so ``t ~ (R / R_ref)^ndim``.  Used to scale a measured
    small-grid time up to the paper's 256^3 / 512^3 domains.
    """
    return t_ref * (r_target / r_ref) ** ndim
