"""Host-side measurements feeding the performance model.

``measure_epoch_time`` produces the Fig. 2 series (epoch time vs degrees
of freedom); ``measure_sample_time`` calibrates the per-sample
forward+backward+step cost used to extrapolate Figs. 9-10.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor
from ..core.mgdiffnet import MGDiffNet
from ..core.problem import PoissonProblem
from ..optim import Adam

__all__ = ["EpochTimePoint", "measure_epoch_time", "measure_sample_time"]


@dataclass(frozen=True)
class EpochTimePoint:
    """One Fig. 2 measurement."""

    resolution: int
    dofs: int
    epoch_seconds: float


def _training_step(model: MGDiffNet, problem: PoissonProblem, optimizer,
                   x: np.ndarray, nu: np.ndarray, resolution: int) -> float:
    chi_int, u_bc = problem.masks(resolution, dtype=x.dtype)
    energy = problem.energy(resolution, reduction="mean")
    u = model(Tensor(x), chi_int, u_bc)
    loss = energy(u, nu)
    optimizer.zero_grad()
    loss.backward()
    optimizer.step()
    return float(loss.data)


def measure_sample_time(model: MGDiffNet, problem: PoissonProblem,
                        resolution: int, batch_size: int = 2,
                        repeats: int = 3, warmup: int = 1,
                        seed: int = 0) -> float:
    """Seconds of forward+backward+step work *per sample* at a resolution."""
    ds = problem.make_dataset(batch_size, skip=1 + seed)
    x = ds.inputs_at(resolution)
    nu = ds.nu_at(resolution)
    optimizer = Adam(model.parameters(), lr=1e-6)
    for _ in range(warmup):
        _training_step(model, problem, optimizer, x, nu, resolution)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _training_step(model, problem, optimizer, x, nu, resolution)
        best = min(best, time.perf_counter() - t0)
    return best / batch_size


def measure_epoch_time(model: MGDiffNet, problem: PoissonProblem,
                       resolution: int, n_samples: int = 8,
                       batch_size: int = 4, seed: int = 0) -> EpochTimePoint:
    """Time one full epoch at a resolution (the Fig. 2 quantity)."""
    ds = problem.make_dataset(n_samples, skip=1 + seed)
    x = ds.inputs_at(resolution)
    nu = ds.nu_at(resolution)
    optimizer = Adam(model.parameters(), lr=1e-6)
    # Warm-up one batch (kernel caches, allocator).
    _training_step(model, problem, optimizer, x[:batch_size], nu[:batch_size],
                   resolution)
    t0 = time.perf_counter()
    for b0 in range(0, n_samples, batch_size):
        _training_step(model, problem, optimizer,
                       x[b0:b0 + batch_size], nu[b0:b0 + batch_size],
                       resolution)
    dt = time.perf_counter() - t0
    return EpochTimePoint(resolution=resolution,
                          dofs=resolution ** problem.ndim,
                          epoch_seconds=dt)
