"""Cluster hardware models (paper Table 6).

These specs drive the virtual-clock communication model used to reproduce
the strong-scaling studies (Figs. 9 and 10) without the physical testbeds.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ClusterSpec", "AZURE_NDV2", "BRIDGES2_CPU"]


@dataclass(frozen=True)
class ClusterSpec:
    """Interconnect and node model of a cluster.

    Parameters
    ----------
    name:
        Human-readable identifier.
    devices_per_node:
        Workers per node (8 GPUs on Azure NDv2; 1 MPI process per CPU node
        on Bridges2 per Sec. 4.2.2).
    bandwidth_gbps:
        Inter-node interconnect bandwidth, gigabits/s (Table 6).
    latency_us:
        Per-message latency, microseconds (typical InfiniBand RDMA).
    intra_node_bandwidth_gbps:
        Bandwidth between workers in the same node (NVLink for NDv2);
        unused when ``devices_per_node == 1``.
    """

    name: str
    devices_per_node: int
    bandwidth_gbps: float
    latency_us: float
    intra_node_bandwidth_gbps: float | None = None
    notes: str = ""

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_gbps * 1e9 / 8.0

    @property
    def latency_s(self) -> float:
        return self.latency_us * 1e-6

    def nodes_for(self, world_size: int) -> int:
        """Number of nodes hosting ``world_size`` workers."""
        return -(-world_size // self.devices_per_node)


#: Azure NDv2-series VMs: 8x V100 32GB per node, EDR InfiniBand 100 Gb/s,
#: fat-tree topology (Table 6).
AZURE_NDV2 = ClusterSpec(
    name="Azure NDv2 (8x V100, EDR IB)",
    devices_per_node=8,
    bandwidth_gbps=100.0,
    latency_us=2.0,
    intra_node_bandwidth_gbps=2400.0,  # NVLink2 aggregate
    notes="Fig. 9 testbed: up to 64 nodes / 512 GPUs, local batch 2",
)

#: PSC Bridges2 regular-memory nodes: AMD EPYC-7742 (128 cores, 256 GB),
#: HDR InfiniBand 200 Gb/s, 1 MPI process per node (Sec. 4.2.2).
BRIDGES2_CPU = ClusterSpec(
    name="PSC Bridges2 (EPYC-7742, HDR IB)",
    devices_per_node=1,
    bandwidth_gbps=200.0,
    latency_us=1.5,
    intra_node_bandwidth_gbps=None,
    notes="Fig. 10 testbed: up to 128 nodes, 1 process/node, 128 OpenMP threads",
)
