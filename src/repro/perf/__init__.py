"""Performance modeling: Table 6 cluster specs, the alpha-beta ring
all-reduce cost model, strong-scaling studies and host measurements."""

from .clusters import ClusterSpec, AZURE_NDV2, BRIDGES2_CPU
from .model import (ring_allreduce_time, step_time, epoch_time,
                    ScalingPoint, strong_scaling_study,
                    compute_time_at_resolution)
from .measure import EpochTimePoint, measure_epoch_time, measure_sample_time
from .fit import PowerLawFit, fit_power_law

__all__ = [
    "PowerLawFit", "fit_power_law",
    "ClusterSpec", "AZURE_NDV2", "BRIDGES2_CPU",
    "ring_allreduce_time", "step_time", "epoch_time",
    "ScalingPoint", "strong_scaling_study", "compute_time_at_resolution",
    "EpochTimePoint", "measure_epoch_time", "measure_sample_time",
]
