"""Text-mode field visualization and CSV report helpers.

The paper's Tables 3-5/7 show heat-map comparisons of predicted vs FEM
fields; without a display stack we render ASCII heat maps and dump CSV so
results remain inspectable from a terminal.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

__all__ = ["ascii_field", "write_csv", "format_table"]

_RAMP = " .:-=+*#%@"


def ascii_field(field: np.ndarray, width: int = 32, height: int = 16,
                vmin: float | None = None, vmax: float | None = None) -> str:
    """Render a 2D array (or mid-slice of a 3D array) as ASCII art."""
    f = np.asarray(field, dtype=np.float64)
    if f.ndim == 3:
        f = f[f.shape[0] // 2]
    if f.ndim != 2:
        raise ValueError(f"expected 2D/3D field, got ndim={f.ndim}")
    # Downsample by striding to the target character grid.
    ys = np.linspace(0, f.shape[0] - 1, num=min(height, f.shape[0])).astype(int)
    xs = np.linspace(0, f.shape[1] - 1, num=min(width, f.shape[1])).astype(int)
    sub = f[np.ix_(ys, xs)]
    lo = vmin if vmin is not None else float(sub.min())
    hi = vmax if vmax is not None else float(sub.max())
    if hi - lo < 1e-30:
        hi = lo + 1.0
    norm = np.clip((sub - lo) / (hi - lo), 0.0, 1.0)
    idx = (norm * (len(_RAMP) - 1)).astype(int)
    lines = ["".join(_RAMP[i] for i in row) for row in idx]
    return "\n".join(lines)


def write_csv(path: str | Path, header: Sequence[str],
              rows: Iterable[Sequence]) -> Path:
    """Write rows to a CSV file, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for row in rows:
            writer.writerow(row)
    return path


def format_table(header: Sequence[str], rows: Iterable[Sequence],
                 float_fmt: str = "{:.4g}") -> str:
    """Format rows as a fixed-width text table (paper-style report)."""
    str_rows = []
    for row in rows:
        str_rows.append([
            float_fmt.format(v) if isinstance(v, float) else str(v) for v in row])
    widths = [len(h) for h in header]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(header, widths)), sep]
    for row in str_rows:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
