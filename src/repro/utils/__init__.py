"""Shared utilities: seeding, logging, text visualization, VTK output."""

from .seeding import make_rng, spawn_rngs, seed_everything
from .logging import get_logger, Stopwatch
from .viz import ascii_field, write_csv, format_table
from .vtk import write_vti, read_vti

__all__ = [
    "make_rng", "spawn_rngs", "seed_everything",
    "get_logger", "Stopwatch",
    "ascii_field", "write_csv", "format_table",
    "write_vti", "read_vti",
]
