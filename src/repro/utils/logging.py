"""Minimal structured logging for trainers and benchmarks."""

from __future__ import annotations

import logging
import sys
import time

__all__ = ["get_logger", "Stopwatch"]

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def get_logger(name: str = "repro", level: int = logging.INFO) -> logging.Logger:
    """Return a configured logger (stream handler attached once)."""
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        logger.addHandler(handler)
        logger.setLevel(level)
        logger.propagate = False
    return logger


class Stopwatch:
    """Accumulating wall-clock timer.

    Usage::

        sw = Stopwatch()
        with sw:
            work()
        sw.elapsed  # seconds
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._t0: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._t0 is not None
        self.elapsed += time.perf_counter() - self._t0
        self._t0 = None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._t0 = None
