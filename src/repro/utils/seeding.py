"""Deterministic RNG management.

Every stochastic component in the library takes an explicit
:class:`numpy.random.Generator`; this module provides the conventions for
deriving independent child generators so distributed replicas and data
pipelines stay reproducible (a prerequisite for the Eq. 15 worker-count
independence property).
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "seed_everything"]

_GLOBAL_SEED: int | None = None


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a Generator; pass-through if one is given."""
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None and _GLOBAL_SEED is not None:
        seed = _GLOBAL_SEED
    return np.random.default_rng(seed)


def spawn_rngs(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def seed_everything(seed: int) -> None:
    """Set a process-wide default seed used when no explicit rng is given."""
    global _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)
    np.random.seed(seed % (2 ** 32))
