"""VTK output for solution fields.

The paper's software stack writes ``.vtu`` files 'in binary format with
compression enabled' via ZLib (Appendix, library dependencies).  Our
fields live on uniform grids, so the natural VTK container is ImageData
(``.vti``) — same XML family, structured variant.  This module writes
zlib-compressed binary ``.vti`` files (readable by ParaView/VisIt) and
includes a reader for round-trip verification.
"""

from __future__ import annotations

import base64
import struct
import zlib
from pathlib import Path
from xml.etree import ElementTree

import numpy as np

__all__ = ["write_vti", "read_vti"]

_HEADER_DTYPE = "UInt64"


def _encode_block(raw: bytes, level: int = 6) -> str:
    """VTK 'binary' (base64) encoding of one zlib-compressed block.

    Layout: header [nblocks, blocksize, lastsize, compressed_size] as
    UInt64, base64-encoded separately, then the compressed payload.
    """
    compressed = zlib.compress(raw, level)
    header = struct.pack("<4Q", 1, len(raw), len(raw), len(compressed))
    return (base64.b64encode(header).decode("ascii")
            + base64.b64encode(compressed).decode("ascii"))


def _decode_block(text: str) -> bytes:
    header_len = len(base64.b64encode(b"\0" * 32))  # 4 x UInt64 -> 44 chars
    header = base64.b64decode(text[:header_len])
    _, _, _, comp_size = struct.unpack("<4Q", header)
    payload = base64.b64decode(text[header_len:])
    return zlib.decompress(payload[:comp_size])


def write_vti(path: str | Path, fields: dict[str, np.ndarray],
              spacing: float | None = None, origin=(0.0, 0.0, 0.0)) -> Path:
    """Write nodal fields on a uniform grid to a compressed ``.vti`` file.

    Parameters
    ----------
    fields:
        Name -> array of shape (R,)*2 or (R,)*3 (all identical shapes).
        2D fields are written as one-cell-thick 3D volumes.
    spacing:
        Grid spacing; defaults to ``1 / (R - 1)`` (unit domain).
    """
    if not fields:
        raise ValueError("no fields given")
    shapes = {f.shape for f in fields.values()}
    if len(shapes) != 1:
        raise ValueError(f"field shapes differ: {shapes}")
    shape = shapes.pop()
    if len(shape) not in (2, 3):
        raise ValueError("fields must be 2D or 3D")
    dims = tuple(shape) + (1,) * (3 - len(shape))
    h = spacing if spacing is not None else 1.0 / (max(dims) - 1)

    extent = f"0 {dims[0] - 1} 0 {dims[1] - 1} 0 {dims[2] - 1}"
    root = ElementTree.Element("VTKFile", {
        "type": "ImageData", "version": "1.0",
        "byte_order": "LittleEndian",
        "header_type": _HEADER_DTYPE,
        "compressor": "vtkZLibDataCompressor"})
    image = ElementTree.SubElement(root, "ImageData", {
        "WholeExtent": extent,
        "Origin": " ".join(str(float(o)) for o in origin),
        "Spacing": f"{h} {h} {h}"})
    piece = ElementTree.SubElement(image, "Piece", {"Extent": extent})
    pdata = ElementTree.SubElement(piece, "PointData",
                                   {"Scalars": next(iter(fields))})
    for name, field in fields.items():
        arr = np.asarray(field, dtype=np.float64)
        # VTK iterates x fastest; our arrays are (x, y[, z]) C-order, so
        # transpose to put x last before ravelling.
        flat = np.ascontiguousarray(arr.T).ravel()
        da = ElementTree.SubElement(pdata, "DataArray", {
            "type": "Float64", "Name": name, "format": "binary",
            "NumberOfComponents": "1"})
        da.text = _encode_block(flat.tobytes())

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    ElementTree.ElementTree(root).write(path, xml_declaration=True,
                                        encoding="UTF-8")
    return path


def read_vti(path: str | Path) -> tuple[dict[str, np.ndarray], float]:
    """Read back a ``.vti`` written by :func:`write_vti`.

    Returns (fields, spacing); one-cell-thick volumes are squeezed back
    to 2D.
    """
    tree = ElementTree.parse(path)
    root = tree.getroot()
    image = root.find("ImageData")
    if image is None:
        raise ValueError("not an ImageData .vti file")
    spacing = float(image.get("Spacing").split()[0])
    extent = [int(v) for v in image.get("WholeExtent").split()]
    dims = (extent[1] + 1, extent[3] + 1, extent[5] + 1)

    fields: dict[str, np.ndarray] = {}
    for da in image.iter("DataArray"):
        raw = _decode_block(da.text.strip())
        flat = np.frombuffer(raw, dtype=np.float64)
        arr = flat.reshape(dims[::-1]).T  # undo the x-fastest transpose
        if dims[2] == 1:
            arr = arr[:, :, 0]
        fields[da.get("Name")] = arr.copy()
    return fields, spacing
