"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``solve``
    One traditional FEM solve for a given omega; optional GMG solver and
    ``.vti`` export.
``train``
    Multigrid training of MGDiffNet on a Sobol-sampled family; writes a
    checkpoint whose metadata records the architecture.
``predict``
    Load a checkpoint, run inference for an omega, optionally compare
    against FEM and export fields.
``scaling``
    Print a strong-scaling table from the performance model (Figs 9/10).
``info``
    Version and component summary.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _parse_omega(text: str, m: int = 4) -> np.ndarray:
    parts = [float(v) for v in text.split(",")]
    if len(parts) != m:
        raise argparse.ArgumentTypeError(f"omega needs {m} values, got {len(parts)}")
    return np.asarray(parts)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Distributed multigrid neural solvers "
        "(SC 2021 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="traditional FEM solve")
    p.add_argument("--ndim", type=int, default=2, choices=(2, 3))
    p.add_argument("--resolution", type=int, default=33)
    p.add_argument("--omega", type=_parse_omega,
                   default=np.array([0.3105, 1.5386, 0.0932, -1.2442]))
    p.add_argument("--solver", choices=("direct", "cg", "gmg"), default="direct")
    p.add_argument("--output", default=None, help=".vti output path")

    p = sub.add_parser("train", help="multigrid training")
    p.add_argument("--ndim", type=int, default=2, choices=(2, 3))
    p.add_argument("--resolution", type=int, default=32)
    p.add_argument("--samples", type=int, default=16)
    p.add_argument("--strategy", default="half_v",
                   choices=("v", "w", "f", "half_v"))
    p.add_argument("--levels", type=int, default=2)
    p.add_argument("--base-filters", type=int, default=8)
    p.add_argument("--depth", type=int, default=2)
    p.add_argument("--batch-size", type=int, default=8)
    p.add_argument("--lr", type=float, default=3e-3)
    p.add_argument("--max-epochs", type=int, default=60)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--checkpoint", default=None, help="output .npz path")
    p.add_argument("--validate", action="store_true",
                   help="held-out FEM validation after training")

    p = sub.add_parser("predict", help="inference from a checkpoint")
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--omega", type=_parse_omega,
                   default=np.array([0.3105, 1.5386, 0.0932, -1.2442]))
    p.add_argument("--resolution", type=int, default=None,
                   help="override inference resolution")
    p.add_argument("--compare-fem", action="store_true")
    p.add_argument("--output", default=None, help=".vti output path")

    p = sub.add_parser("scaling", help="strong-scaling table (perf model)")
    p.add_argument("--cluster", choices=("azure", "bridges2"), default="azure")
    p.add_argument("--t-sample", type=float, default=2.8125,
                   help="seconds/sample (default: paper-calibrated V100)")
    p.add_argument("--n-params", type=int, default=1_000_000)
    p.add_argument("--samples", type=int, default=1024)
    p.add_argument("--local-batch", type=int, default=2)
    p.add_argument("--max-workers", type=int, default=512)

    sub.add_parser("info", help="version and component summary")
    return parser


# --------------------------------------------------------------------- #
def _cmd_solve(args) -> int:
    from .core.problem import PoissonProblem
    from .fem import GeometricMultigrid

    problem = PoissonProblem(args.ndim, args.resolution)
    if args.solver == "gmg":
        grid = problem.grid()
        gmg = GeometricMultigrid(grid, problem.nu(args.omega),
                                 problem.bc())
        u = gmg.solve(tol=1e-9)
        rep = gmg.last_report
        print(f"GMG: {gmg.num_levels} levels, {rep.iterations} cycles, "
              f"residual {rep.residual:.2e}")
    else:
        u = problem.fem_solve(args.omega, method=args.solver)
    print(f"solution range: [{u.min():.4f}, {u.max():.4f}]")
    if args.output:
        from .utils.vtk import write_vti

        path = write_vti(args.output, {"u": u, "nu": problem.nu(args.omega)},
                         spacing=problem.grid().h)
        print(f"wrote {path}")
    return 0


def _cmd_train(args) -> int:
    from .core.checkpoint import save_checkpoint
    from .core.mg_trainer import MGTrainConfig, MultigridTrainer
    from .core.mgdiffnet import MGDiffNet
    from .core.problem import PoissonProblem

    problem = PoissonProblem(args.ndim, args.resolution)
    dataset = problem.make_dataset(args.samples)
    model = MGDiffNet(ndim=args.ndim, base_filters=args.base_filters,
                      depth=args.depth, rng=args.seed)
    config = MGTrainConfig(batch_size=args.batch_size, lr=args.lr,
                           max_epochs_per_level=args.max_epochs,
                           seed=args.seed)
    trainer = MultigridTrainer(model, problem, dataset,
                               strategy=args.strategy, levels=args.levels,
                               config=config)
    result = trainer.train()
    print(f"trained {args.strategy} x{args.levels} levels in "
          f"{result.total_time:.1f}s, final loss {result.final_loss:.5f}")
    for rec in result.records:
        print(f"  L{rec.level} ({rec.resolution}^{args.ndim}) {rec.phase}: "
              f"{rec.result.epochs_run} epochs, {rec.wall_time:.2f}s")
    if args.validate:
        from .core.validation import Validator

        res = Validator(problem, n_samples=4).evaluate(model)
        print(res)
    if args.checkpoint:
        path = save_checkpoint(
            args.checkpoint, model, trainer.trainer.optimizer,
            epoch=trainer.trainer.global_epoch,
            extra={"ndim": args.ndim, "base_filters": args.base_filters,
                   "depth": args.depth, "resolution": args.resolution})
        print(f"wrote {path}")
    return 0


def _cmd_predict(args) -> int:
    from .core.checkpoint import load_checkpoint
    from .core.metrics import compare_fields
    from .core.mgdiffnet import MGDiffNet
    from .core.problem import PoissonProblem

    # Peek at the metadata to reconstruct the architecture.
    with np.load(args.checkpoint) as data:
        meta = {k.split("::", 1)[1]: data[k].item()
                for k in data.files if k.startswith("meta::")}
    model = MGDiffNet(ndim=int(meta["ndim"]),
                      base_filters=int(meta["base_filters"]),
                      depth=int(meta["depth"]), rng=0)
    load_checkpoint(args.checkpoint, model)
    resolution = args.resolution or int(meta["resolution"])
    problem = PoissonProblem(int(meta["ndim"]), resolution)
    u = model.predict(problem, args.omega)
    print(f"predicted field at {resolution}^{meta['ndim']}: "
          f"range [{u.min():.4f}, {u.max():.4f}]")
    if args.compare_fem:
        ref = problem.fem_solve(args.omega)
        print(f"vs FEM: {compare_fields(u, ref)}")
    if args.output:
        from .utils.vtk import write_vti

        path = write_vti(args.output, {"u": u}, spacing=problem.grid().h)
        print(f"wrote {path}")
    return 0


def _cmd_scaling(args) -> int:
    from .perf import AZURE_NDV2, BRIDGES2_CPU, strong_scaling_study
    from .utils.viz import format_table

    spec = AZURE_NDV2 if args.cluster == "azure" else BRIDGES2_CPU
    ps = []
    p = 1
    while p <= args.max_workers:
        ps.append(p)
        p *= 2
    pts = strong_scaling_study(ps, n_samples=args.samples,
                               t_sample=args.t_sample,
                               n_params=args.n_params, spec=spec,
                               local_batch=args.local_batch)
    rows = [[pt.world_size, pt.nodes, f"{pt.epoch_seconds:.2f}",
             f"{pt.speedup:.1f}x", f"{pt.efficiency:.3f}"] for pt in pts]
    print(f"cluster: {spec.name}")
    print(format_table(["workers", "nodes", "epoch (s)", "speedup", "eff"],
                       rows))
    return 0


def _cmd_info(args) -> int:
    from . import __version__

    print(f"repro {__version__} — reproduction of 'Distributed multigrid "
          f"neural solvers on megavoxel domains' (SC 2021)")
    print("components: autograd, nn (U-Net), optim, fem (+GMG), data "
          "(Sobol/Eq.10), multigrid (V/W/F/Half-V), distributed "
          "(ring all-reduce), perf (Table 6 models)")
    return 0


_COMMANDS = {
    "solve": _cmd_solve,
    "train": _cmd_train,
    "predict": _cmd_predict,
    "scaling": _cmd_scaling,
    "info": _cmd_info,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
