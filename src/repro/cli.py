"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``solve``
    One traditional FEM solve for a given omega; optional GMG solver and
    ``.vti`` export.
``train``
    Multigrid training of MGDiffNet on a Sobol-sampled family; writes a
    checkpoint whose metadata records the architecture.
``predict``
    Load a checkpoint, run inference for an omega, optionally compare
    against FEM and export fields.  ``--tile``/``--halo`` switch to the
    tiled megavoxel path (exact, bounded memory).
``serve``
    Load checkpoints into a :class:`repro.serve.ModelRegistry` and run
    the batching/caching prediction server against a request load
    (Sobol-sampled by default, or ω vectors from a file), printing
    QPS, latency percentiles and cache statistics.  ``--shards N
    --replicas R`` runs the consistent-hash-routed
    :class:`repro.serve.ShardedFleet` instead: registry entries and
    request load spread over N simulated hosts with failover.
    ``--metrics-file`` / ``--trace-file`` turn on the telemetry layer
    and dump the metrics snapshot / request spans on exit.
``trace``
    Offline analysis of an exported span jsonl: ``trace summarize``
    prints the per-stage latency breakdown.
``scaling``
    Print a strong-scaling table from the performance model (Figs 9/10).
``info``
    Version and component summary.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _parse_omega(text: str, m: int = 4) -> np.ndarray:
    parts = [float(v) for v in text.split(",")]
    if len(parts) != m:
        raise argparse.ArgumentTypeError(f"omega needs {m} values, got {len(parts)}")
    return np.asarray(parts)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_tile(text: str) -> "int | str":
    """``--tile``: a core tile size, or 'autotune' for the measured
    per-host winner."""
    if text == "autotune":
        return text
    return _positive_int(text)


def _parse_tenant_quota(text: str) -> tuple[float, float]:
    """``--tenant-quota RATE[:BURST]`` -> (rate req/s, burst capacity);
    burst defaults to 2x the rate."""
    rate_text, _, burst_text = text.partition(":")
    try:
        rate = float(rate_text)
        burst = float(burst_text) if burst_text else 2.0 * rate
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected RATE[:BURST], got {text!r}") from None
    if rate <= 0 or burst < 1:
        raise argparse.ArgumentTypeError(
            f"need rate > 0 and burst >= 1, got rate={rate} burst={burst}")
    return rate, burst


def _parse_aging(text: str) -> float | None:
    """``--priority-aging``: positive rate, or 0 as a spelling of
    'strict priority' (the default)."""
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"priority aging must be >= 0, got {value}")
    return value or None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Distributed multigrid neural solvers "
        "(SC 2021 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="traditional FEM solve")
    p.add_argument("--ndim", type=int, default=2, choices=(2, 3))
    p.add_argument("--resolution", type=int, default=33)
    p.add_argument("--omega", type=_parse_omega,
                   default=np.array([0.3105, 1.5386, 0.0932, -1.2442]))
    p.add_argument("--solver", choices=("direct", "cg", "gmg"), default="direct")
    p.add_argument("--output", default=None, help=".vti output path")

    p = sub.add_parser("train", help="multigrid training")
    p.add_argument("--ndim", type=int, default=2, choices=(2, 3))
    p.add_argument("--resolution", type=int, default=32)
    p.add_argument("--samples", type=int, default=16)
    p.add_argument("--strategy", default="half_v",
                   choices=("v", "w", "f", "half_v"))
    p.add_argument("--levels", type=int, default=2)
    p.add_argument("--base-filters", type=int, default=8)
    p.add_argument("--depth", type=int, default=2)
    p.add_argument("--batch-size", type=int, default=8)
    p.add_argument("--lr", type=float, default=3e-3)
    p.add_argument("--max-epochs", type=int, default=60)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--checkpoint", default=None, help="output .npz path")
    p.add_argument("--validate", action="store_true",
                   help="held-out FEM validation after training")

    p = sub.add_parser("predict", help="inference from a checkpoint")
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--omega", type=_parse_omega,
                   default=np.array([0.3105, 1.5386, 0.0932, -1.2442]))
    p.add_argument("--resolution", type=int, default=None,
                   help="override inference resolution")
    p.add_argument("--compare-fem", action="store_true")
    p.add_argument("--output", default=None, help=".vti output path")
    p.add_argument("--tile", "--tile-size", type=_parse_tile, dest="tile",
                   default=None, metavar="N|autotune",
                   help="tiled inference with this core tile size "
                        "(multiple of 2**depth); 'autotune' measures "
                        "candidates once and persists the winner per host")
    p.add_argument("--halo", type=int, default=None,
                   help="halo width for --tile (default: receptive field)")
    p.add_argument("--stream", action="store_true",
                   help="stream tile cores as they complete (tiled path; "
                        "honours --tile/--halo/--executor) and report "
                        "first-tile vs full-field latency")
    p.add_argument("--executor", default="serial",
                   choices=("serial", "thread", "process"),
                   help="fan tiled inference across this worker pool")
    p.add_argument("--executor-workers", type=int, default=None,
                   help="pool size for --executor (default: CPU count)")
    p.add_argument("--autotune", action="store_true",
                   help="measured conv autotuning (persisted per host)")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="retry transient failures (I/O, executor faults) "
                        "up to N extra attempts with jittered backoff")

    p = sub.add_parser("serve", help="batching/caching prediction server")
    p.add_argument("--checkpoint", action="append", required=True,
                   metavar="[NAME=]PATH",
                   help="checkpoint to serve; repeatable, optionally named")
    p.add_argument("--requests", type=int, default=64,
                   help="synthetic Sobol request count")
    p.add_argument("--omega-file", default=None,
                   help="CSV of ω rows to request instead of Sobol samples")
    p.add_argument("--resolution", type=int, default=None,
                   help="override serving resolution")
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument("--max-wait-ms", type=float, default=2.0)
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--cache-mb", type=int, default=64)
    p.add_argument("--backend", default=None,
                   help="array backend workers pin (e.g. 'threaded')")
    p.add_argument("--tile", "--tile-size", type=_parse_tile, dest="tile",
                   default=None, metavar="N|autotune",
                   help="force tiled forwards with this core tile size "
                        "('autotune': measured winner, persisted per host)")
    p.add_argument("--tile-threshold", type=int, default=2 ** 21,
                   help="voxel count above which forwards are tiled")
    p.add_argument("--repeat", type=int, default=1,
                   help="replay the request set (>1 exercises the cache)")
    p.add_argument("--executor", default="serial",
                   choices=("serial", "thread", "process"),
                   help="compute layer for the worker fleet (process "
                        "escapes the GIL for CPU-bound inference)")
    p.add_argument("--cache-dir", default=None,
                   help="spill the result cache to this directory "
                        "(one npz per entry; survives restarts)")
    p.add_argument("--spill-mb", type=int, default=None,
                   help="byte budget (MiB) for --cache-dir; LRU files "
                        "are evicted over budget (default: unbounded)")
    p.add_argument("--max-pending", type=int, default=0,
                   help="bound the request queue; overflowing submits "
                        "are rejected with backpressure (0: unbounded)")
    p.add_argument("--default-deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="latency budget per request; requests still "
                        "queued past it fail with DeadlineExceeded")
    p.add_argument("--autotune", action="store_true",
                   help="measured conv autotuning (persisted per host)")
    p.add_argument("--priority-aging", type=_parse_aging, default=None,
                   metavar="SECONDS",
                   help="age-escalation rate: a queued request overtakes "
                        "one priority level per this many seconds waited "
                        "(bounds bulk-lane starvation; default: strict)")
    p.add_argument("--shards", type=_positive_int, default=1,
                   help="shard the registry and request load over this "
                        "many simulated hosts (consistent-hash routed; "
                        "1: single server)")
    p.add_argument("--replicas", type=_positive_int, default=2,
                   help="replica count per routing key with --shards>1 "
                        "(writes fan out; reads fail over)")
    p.add_argument("--shard-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="with --shards>1: eject a shard that does not "
                        "answer within this budget and fail over")
    p.add_argument("--control", action="store_true",
                   help="with --shards>1: run the control plane (backoff "
                        "health probes + power-of-two-choices read "
                        "spreading) beside the fleet")
    p.add_argument("--autoscale-min", type=_positive_int, default=None,
                   metavar="N",
                   help="with --control: queue-depth autoscaling, lower "
                        "shard bound (implies --autoscale-max)")
    p.add_argument("--autoscale-max", type=_positive_int, default=None,
                   metavar="N",
                   help="with --control: autoscaling upper shard bound")
    p.add_argument("--tenant-quota", type=_parse_tenant_quota, default=None,
                   metavar="RATE[:BURST]",
                   help="with --control: per-tenant token-bucket admission "
                        "(RATE req/s sustained, BURST back-to-back; "
                        "default burst 2*RATE)")
    p.add_argument("--tenant", default=None,
                   help="tenant name the synthetic request load is "
                        "accounted to (default: unmetered)")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="with --shards>1: re-submit transient failures "
                        "(unavailable / overloaded / throttled) up to N "
                        "extra attempts, metered by the retry budget")
    p.add_argument("--retry-budget", type=_parse_tenant_quota, default=None,
                   metavar="RATE[:BURST]",
                   help="token bucket bounding fleet-wide retries "
                        "(RATE tokens/s sustained, BURST back-to-back; "
                        "default 2:8)")
    p.add_argument("--hedge", type=float, nargs="?", const=95.0,
                   default=None, metavar="QUANTILE",
                   help="with --shards>1: hedge slow reads — race a "
                        "backup request on another replica once this "
                        "tracked latency quantile elapses (default 95)")
    p.add_argument("--breaker-after", type=_positive_int, default=None,
                   metavar="N",
                   help="with --shards>1: open a (model, shard) circuit "
                        "after N consecutive faults and prefer other "
                        "replicas until it heals")
    p.add_argument("--breaker-reset", type=float, default=1.0,
                   metavar="SECONDS",
                   help="cool-down before an open circuit half-opens "
                        "and admits trial requests (default 1.0)")
    p.add_argument("--metrics-file", default=None, metavar="PATH",
                   help="enable telemetry and write the metrics-registry "
                        "snapshot (counters, gauges, quantile sketches) "
                        "to this JSON file on exit")
    p.add_argument("--trace-file", default=None, metavar="PATH",
                   help="enable telemetry and write the captured request "
                        "spans to this jsonl file on exit "
                        "(see 'repro trace summarize')")
    p.add_argument("--trace-sample", type=_positive_int, default=1,
                   metavar="N",
                   help="trace one request in N (whole subtrees; "
                        "default 1 = every request)")

    p = sub.add_parser("trace", help="inspect exported telemetry traces")
    p.add_argument("action", choices=("summarize",),
                   help="summarize: per-stage latency breakdown")
    p.add_argument("file", help="span jsonl written by "
                                "'repro serve --trace-file'")

    p = sub.add_parser("scaling", help="strong-scaling table (perf model)")
    p.add_argument("--cluster", choices=("azure", "bridges2"), default="azure")
    p.add_argument("--t-sample", type=float, default=2.8125,
                   help="seconds/sample (default: paper-calibrated V100)")
    p.add_argument("--n-params", type=int, default=1_000_000)
    p.add_argument("--samples", type=int, default=1024)
    p.add_argument("--local-batch", type=int, default=2)
    p.add_argument("--max-workers", type=int, default=512)

    sub.add_parser("info", help="version and component summary")
    return parser


# --------------------------------------------------------------------- #
def _cmd_solve(args) -> int:
    from .core.problem import PoissonProblem
    from .fem import GeometricMultigrid

    problem = PoissonProblem(args.ndim, args.resolution)
    if args.solver == "gmg":
        grid = problem.grid()
        gmg = GeometricMultigrid(grid, problem.nu(args.omega),
                                 problem.bc())
        u = gmg.solve(tol=1e-9)
        rep = gmg.last_report
        print(f"GMG: {gmg.num_levels} levels, {rep.iterations} cycles, "
              f"residual {rep.residual:.2e}")
    else:
        u = problem.fem_solve(args.omega, method=args.solver)
    print(f"solution range: [{u.min():.4f}, {u.max():.4f}]")
    if args.output:
        from .utils.vtk import write_vti

        path = write_vti(args.output, {"u": u, "nu": problem.nu(args.omega)},
                         spacing=problem.grid().h)
        print(f"wrote {path}")
    return 0


def _cmd_train(args) -> int:
    from .core.checkpoint import save_checkpoint
    from .core.mg_trainer import MGTrainConfig, MultigridTrainer
    from .core.mgdiffnet import MGDiffNet
    from .core.problem import PoissonProblem

    problem = PoissonProblem(args.ndim, args.resolution)
    dataset = problem.make_dataset(args.samples)
    model = MGDiffNet(ndim=args.ndim, base_filters=args.base_filters,
                      depth=args.depth, rng=args.seed)
    config = MGTrainConfig(batch_size=args.batch_size, lr=args.lr,
                           max_epochs_per_level=args.max_epochs,
                           seed=args.seed)
    trainer = MultigridTrainer(model, problem, dataset,
                               strategy=args.strategy, levels=args.levels,
                               config=config)
    result = trainer.train()
    print(f"trained {args.strategy} x{args.levels} levels in "
          f"{result.total_time:.1f}s, final loss {result.final_loss:.5f}")
    for rec in result.records:
        print(f"  L{rec.level} ({rec.resolution}^{args.ndim}) {rec.phase}: "
              f"{rec.result.epochs_run} epochs, {rec.wall_time:.2f}s")
    if args.validate:
        from .core.validation import Validator

        res = Validator(problem, n_samples=4).evaluate(model)
        print(res)
    if args.checkpoint:
        path = save_checkpoint(
            args.checkpoint, model, trainer.trainer.optimizer,
            epoch=trainer.trainer.global_epoch,
            extra={"ndim": args.ndim, "base_filters": args.base_filters,
                   "depth": args.depth, "resolution": args.resolution})
        print(f"wrote {path}")
    return 0


def _cmd_predict(args) -> int:
    import time

    from .backend import set_conv_plan_mode
    from .core.metrics import compare_fields
    from .serve import (
        ModelRegistry, RegistryError, make_executor, stream_tiled_predict,
        tiled_predict,
    )

    if args.autotune:
        set_conv_plan_mode("autotune")
    policy = None
    if args.retries > 0:
        from .serve import RetryConfig, RetryPolicy

        # Local inference has no fleet to storm, but transient I/O or
        # executor faults (a spill read race, a worker lost to an OOM
        # kill) deserve the same budgeted, jittered second chance.
        policy = RetryPolicy(
            RetryConfig(max_attempts=args.retries + 1, budget_rate=1.0,
                        budget_burst=max(1, args.retries)),
            retryable=lambda exc: isinstance(exc, (OSError, RuntimeError)))
    registry = ModelRegistry()
    try:
        entry = registry.load("model", args.checkpoint, validate=False)
    except RegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    model, problem = entry.model, entry.problem
    resolution = args.resolution or problem.resolution
    executor = make_executor(args.executor, args.executor_workers)
    try:
        attempt = 0
        while True:
            try:
                if args.stream:
                    # Progressive delivery: assemble tile cores as the
                    # pool completes them.  The gap between the two
                    # latencies below is the streaming win — a consumer
                    # (renderer, outer solver loop) starts on the first
                    # core while the rest are still computing.
                    grid_shape = problem.grid(resolution).shape
                    out = None
                    n_tiles = 0
                    first_s = None
                    t_start = time.perf_counter()
                    for _, sl, core in stream_tiled_predict(
                            model, problem, args.omega,
                            resolution=resolution, tile=args.tile,
                            halo=args.halo, executor=executor):
                        if first_s is None:
                            first_s = time.perf_counter() - t_start
                        if out is None:
                            out = np.empty((core.shape[0],) + grid_shape,
                                           dtype=core.dtype)
                        out[(slice(None),) + sl] = core
                        n_tiles += 1
                    full_s = time.perf_counter() - t_start
                    u = out[0]
                    print(f"streamed {n_tiles} tiles: first tile in "
                          f"{first_s * 1e3:.1f} ms, full field in "
                          f"{full_s * 1e3:.1f} ms")
                elif args.tile is not None or args.halo is not None:
                    u = tiled_predict(model, problem, args.omega,
                                      resolution=resolution,
                                      tile=args.tile, halo=args.halo,
                                      executor=executor)[0]
                else:
                    u = model.predict(problem, args.omega,
                                      resolution=resolution)
                break
            except (OSError, RuntimeError) as exc:
                delay = None if policy is None else policy.plan(exc, attempt)
                if delay is None:
                    raise
                attempt += 1
                print(f"transient failure ({exc}); retrying in "
                      f"{delay * 1e3:.0f} ms", file=sys.stderr)
                time.sleep(delay)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        executor.close()
    print(f"predicted field at {resolution}^{problem.ndim}: "
          f"range [{u.min():.4f}, {u.max():.4f}]")
    if args.compare_fem:
        ref = problem.fem_solve(args.omega, resolution=resolution)
        print(f"vs FEM: {compare_fields(u, ref)}")
    if args.output:
        from .utils.vtk import write_vti

        path = write_vti(args.output, {"u": u},
                         spacing=problem.grid(resolution).h)
        print(f"wrote {path}")
    return 0


def _serve_request_loads(args, names, get_entry) -> dict[str, np.ndarray]:
    """Per-model request ω sets: the --omega-file rows, or Sobol samples
    sized to each model's parameter space.  Shared by the single-server
    and fleet paths so the two CLI modes replay identical workloads."""
    from .data.sobol import sample_omega

    file_omegas = (np.atleast_2d(np.loadtxt(args.omega_file, delimiter=","))
                   if args.omega_file else None)
    loads: dict[str, np.ndarray] = {}
    for name in names:
        if file_omegas is not None:
            loads[name] = file_omegas
        else:
            entry = get_entry(name)
            loads[name] = sample_omega(args.requests, entry.problem.field.m,
                                       omega_range=entry.problem.omega_range)
    return loads


_RETRY_WALL_S = 30.0   # total retry wall-time cap per client submit


def _submit_with_backoff(backend, name, omega, resolution, tenant=None,
                         max_wait_s=_RETRY_WALL_S):
    """With --max-pending the queue sheds load; this client applies the
    intended response.  Backpressure gets seeded jittered exponential
    backoff (2 ms doubling to a 100 ms cap — fixed delays from many
    clients re-collide forever); a throttled tenant sleeps exactly the
    ``retry_after_s`` its rejection names — the token bucket's own
    refill horizon, not a guess.  Total retry wall-time is capped at
    ``max_wait_s``: when the next delay cannot fit, the pending verdict
    propagates to the caller instead of retrying unboundedly."""
    import random
    import time

    from .serve import ServerOverloaded, TenantThrottled

    rng = random.Random(0)
    deadline = time.monotonic() + max_wait_s
    backoff = 0.002
    while True:
        try:
            if tenant is None:
                return backend.submit(name, omega, resolution)
            return backend.submit(name, omega, resolution, tenant=tenant)
        except ServerOverloaded:
            delay = rng.uniform(0.0, backoff)
            backoff = min(backoff * 2.0, 0.1)
            if time.monotonic() + delay >= deadline:
                raise
            time.sleep(delay)
        except TenantThrottled as exc:
            delay = max(0.0, float(exc.retry_after_s))
            if time.monotonic() + delay >= deadline:
                raise
            time.sleep(delay)


def _serve_telemetry(args):
    """Build the telemetry bundle when any ``--metrics-file`` /
    ``--trace-file`` flag asks for it; ``None`` keeps serving free."""
    if args.metrics_file is None and args.trace_file is None:
        return None
    from .serve import Telemetry

    return Telemetry(trace_sample=args.trace_sample)


def _write_telemetry(args, telemetry) -> None:
    """Flush the telemetry surfaces: echo the per-stage breakdown,
    then dump the metrics snapshot / span jsonl where asked."""
    if telemetry is None:
        return
    from .serve import export_jsonl, format_summary, summarize_spans

    spans = telemetry.tracer.spans()
    if spans:
        print("trace: per-stage latency breakdown")
        print(format_summary(summarize_spans(spans)))
    if args.metrics_file is not None:
        with open(args.metrics_file, "w") as fh:
            fh.write(telemetry.metrics.to_json())
        print(f"metrics -> {args.metrics_file}")
    if args.trace_file is not None:
        with open(args.trace_file, "w") as fh:
            fh.write(export_jsonl(spans))
        print(f"trace -> {args.trace_file} ({len(spans)} spans)")


def _cmd_serve(args) -> int:
    import time

    from .backend import set_conv_plan_mode
    from .serve import (
        DeadlineExceeded, ModelRegistry, PredictionServer, RegistryError,
        ServerConfig, ServerOverloaded,
    )

    if args.autotune:
        set_conv_plan_mode("autotune")
    config = ServerConfig(
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        workers=args.workers, cache_bytes=args.cache_mb * 1024 * 1024,
        backend=args.backend, tile=args.tile,
        tile_threshold_voxels=args.tile_threshold,
        executor=args.executor, cache_dir=args.cache_dir,
        spill_max_bytes=(args.spill_mb * 1024 * 1024
                         if args.spill_mb is not None else None),
        max_pending=args.max_pending,
        default_deadline_s=args.default_deadline,
        priority_aging_s=args.priority_aging)
    if args.shards > 1:
        return _serve_fleet(args, config)
    registry = ModelRegistry()
    try:
        for spec in args.checkpoint:
            name, _, path = spec.rpartition("=")
            entry = registry.load(name or "model", path or spec)
            print(f"loaded {entry}")
    except RegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    server = PredictionServer(registry, config)
    telemetry = _serve_telemetry(args)
    if telemetry is not None:
        server.enable_telemetry(telemetry)
    names = registry.names()
    loads = _serve_request_loads(args, names, registry.get)

    t0 = time.perf_counter()
    try:
        with server:
            def submit(name, w):
                try:
                    return _submit_with_backoff(
                        server, name, w, args.resolution)
                except ServerOverloaded:
                    # Still shedding after the full retry wall-time cap:
                    # already counted in stats.rejected — report there.
                    return None

            for _ in range(max(1, args.repeat)):
                futures = [(name, submit(name, w))
                           for name in names for w in loads[name]]
                for _, f in futures:
                    if f is None:
                        continue
                    try:
                        f.result()
                    except DeadlineExceeded:
                        pass  # reported below via stats.expired
            # Every future has resolved: measure before the with-block
            # exit so worker join + pool teardown don't deflate QPS.
            wall = time.perf_counter() - t0
    except ValueError as exc:
        # Bad request parameters (ω arity, tile/halo alignment, ...).
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        server.close()

    s, c = server.stats, server.cache.stats
    print(f"served {s.requests} requests in {wall:.3f}s "
          f"({s.requests / wall:.1f} QPS) with {config.workers} "
          f"{config.executor} worker(s)")
    print(f"latency p50 {s.p50 * 1e3:.2f} ms, p99 {s.p99 * 1e3:.2f} ms; "
          f"{s.batches} batches, mean size {s.mean_batch_size:.2f}, "
          f"{s.tiled_forwards} tiled forwards, {s.dedup_hits} dedup hits")
    print(f"scheduling: {s.rejected} backpressure rejections, "
          f"{s.expired} expired deadlines")
    print(f"cache: {c.hits} hits / {c.misses} misses "
          f"({100 * c.hit_rate:.0f}%), {c.bytes_cached >> 20} MiB resident, "
          f"{c.evictions} evictions, {c.spill_hits} spill hits, "
          f"{c.spill_writes} spill writes, {c.spill_evictions} spill "
          f"evictions")
    _write_telemetry(args, telemetry)
    return 0


def _serve_fleet(args, config) -> int:
    """``repro serve --shards N --replicas R``: the sharded fleet path.

    ``--control`` layers the SLO control plane on top: backoff health
    probes, p2c read spreading, and optionally per-tenant admission
    (``--tenant-quota``) and queue-depth autoscaling
    (``--autoscale-min/--autoscale-max``).  ``--retries`` /
    ``--retry-budget`` / ``--hedge`` / ``--breaker-after`` install the
    client-side resilience policies on the fleet's seams.
    """
    import contextlib
    import time

    from .serve import (
        BreakerConfig, ControlConfig, ControlPlane, DeadlineExceeded,
        FleetUnavailable, HedgeConfig, RegistryError, ResilienceConfig,
        RetryConfig, ServerOverloaded, TenantThrottled, install_resilience,
    )
    from .serve.fleet import FleetConfig, ShardedFleet

    fleet = ShardedFleet(FleetConfig(
        shards=args.shards, replicas=args.replicas,
        shard_timeout_s=args.shard_timeout, server=config))
    telemetry = _serve_telemetry(args)
    if telemetry is not None:
        fleet.enable_telemetry(telemetry)
    use_resilience = (args.retries > 0 or args.retry_budget is not None
                      or args.hedge is not None
                      or args.breaker_after is not None)
    if use_resilience:
        retry_cfg = None
        if args.retries > 0 or args.retry_budget is not None:
            rate, burst = (args.retry_budget
                           if args.retry_budget is not None else (2.0, 8.0))
            retry_cfg = RetryConfig(max_attempts=max(args.retries, 1) + 1,
                                    budget_rate=rate, budget_burst=burst)
        try:
            install_resilience(fleet, ResilienceConfig(
                retry=retry_cfg,
                hedge=(HedgeConfig(quantile=args.hedge)
                       if args.hedge is not None else None),
                breaker=(BreakerConfig(
                    failure_threshold=args.breaker_after,
                    reset_after_s=args.breaker_reset)
                    if args.breaker_after is not None else None)))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    plane = None
    use_control = (args.control or args.autoscale_min is not None
                   or args.tenant_quota is not None)
    if use_control:
        rate, burst = (args.tenant_quota if args.tenant_quota is not None
                       else (None, None))
        autoscale = args.autoscale_min is not None
        plane = ControlPlane(fleet, ControlConfig(
            tenant_rate=rate, tenant_burst=burst,
            autoscale=autoscale,
            autoscale_min=args.autoscale_min or 1,
            autoscale_max=(args.autoscale_max or
                           max(args.shards, args.autoscale_min or 1))))
    try:
        for spec in args.checkpoint:
            name, _, path = spec.rpartition("=")
            entry = fleet.load(name or "model", path or spec)
            print(f"loaded {entry} -> replicas "
                  f"{fleet.replicas_for(name or 'model')}")
    except RegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    names = fleet.names()
    loads = _serve_request_loads(args, names, fleet.get)

    def submit(name, w):
        try:
            return _submit_with_backoff(fleet, name, w, args.resolution,
                                        tenant=args.tenant)
        except FleetUnavailable:
            # Every replica for this key is down *right now*; already
            # counted in stats.unavailable — shed and report below.
            return None
        except (ServerOverloaded, TenantThrottled):
            # Still shedding / throttling after the retry wall-time
            # cap; counted in the fleet stats — report there.
            return None

    def drain(name, w, f):
        """Await one future; transient verdicts re-submit through the
        installed retry policy (each retry a fresh conserved submit)."""
        attempt = 0
        while True:
            if f is not None:
                try:
                    # await_result (not f.result): --shard-timeout
                    # ejects hung shards on this path too.
                    fleet.await_result(f)
                    return
                except (DeadlineExceeded, FleetUnavailable,
                        ServerOverloaded, TenantThrottled) as exc:
                    # ServerOverloaded can arrive through the future
                    # when a failover re-dispatch lands on a full
                    # replica queue; everything here is reported below
                    # via the fleet stats.
                    pending = exc
            else:
                return
            policy = fleet.retry
            delay = (None if policy is None
                     else policy.plan(pending, attempt))
            if delay is None:
                return
            attempt += 1
            fleet.note_retry()
            if delay > 0:
                time.sleep(delay)
            f = submit(name, w)

    t0 = time.perf_counter()
    try:
        with fleet, (plane if plane is not None
                     else contextlib.nullcontext()):
            for _ in range(max(1, args.repeat)):
                futures = [(name, w, submit(name, w))
                           for name in names for w in loads[name]]
                for name, w, f in futures:
                    drain(name, w, f)
            wall = time.perf_counter() - t0
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        fleet.close()

    s = fleet.stats
    print(f"served {s.served} of {s.submitted} requests in {wall:.3f}s "
          f"({s.served / wall:.1f} QPS) across {s.shards} shards "
          f"(replicas={min(args.replicas, args.shards)}, "
          f"{s.healthy_shards} healthy)")
    print(f"latency p50 {s.p50 * 1e3:.2f} ms, p99 {s.p99 * 1e3:.2f} ms; "
          f"{s.batches} batches, {s.cache_hits} cache hits, "
          f"{s.dedup_hits} dedup hits, {s.tiled_forwards} tiled forwards")
    print(f"scheduling: {s.rejected} rejections, {s.expired} expired, "
          f"{s.throttled} throttled; "
          f"faults: {s.shard_faults} ejections, {s.failovers} failovers, "
          f"{s.readmissions} readmissions; lost: {s.lost}")
    if use_resilience:
        print(f"resilience: {s.retried} retried, {s.hedges} hedges "
              f"({s.hedged_wins} wins, {s.hedge_cancels} cancelled), "
              f"{s.breaker_open} breaker deflections")
    print(f"interconnect (simulated): {s.send_calls} hops, "
          f"{s.send_bytes >> 20} MiB, "
          f"{s.virtual_comm_seconds * 1e3:.2f} ms virtual")
    if plane is not None:
        cs = plane.stats
        print(f"control plane: {cs.ticks} ticks, {cs.probes} probes "
              f"({cs.backoffs} backed off), {cs.readmissions} readmissions, "
              f"{cs.decommissions} decommissions "
              f"({cs.reregistrations} re-registrations); "
              f"spread: {cs.balance_diversions}/{cs.balance_decisions} "
              f"reads diverted; scale: +{cs.scale_ups}/-{cs.scale_downs}")
        for tenant, row in sorted(cs.tenants.items()):
            print(f"  tenant {tenant}: {row['admitted']} admitted, "
                  f"{row['throttled']} throttled")
    for sid, row in s.per_shard.items():
        state = "up" if row["healthy"] else "DOWN"
        print(f"  {sid} [{state}] requests={row['requests']} "
              f"cache_hits={row['cache_hits']} models={row['models']}")
    _write_telemetry(args, telemetry)
    return 0


def _cmd_trace(args) -> int:
    from .serve import format_summary, parse_jsonl, summarize_spans

    try:
        with open(args.file) as fh:
            spans = parse_jsonl(fh.read())
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not spans:
        print(f"no spans in {args.file}", file=sys.stderr)
        return 1
    print(format_summary(summarize_spans(spans)))
    return 0


def _cmd_scaling(args) -> int:
    from .perf import AZURE_NDV2, BRIDGES2_CPU, strong_scaling_study
    from .utils.viz import format_table

    spec = AZURE_NDV2 if args.cluster == "azure" else BRIDGES2_CPU
    ps = []
    p = 1
    while p <= args.max_workers:
        ps.append(p)
        p *= 2
    pts = strong_scaling_study(ps, n_samples=args.samples,
                               t_sample=args.t_sample,
                               n_params=args.n_params, spec=spec,
                               local_batch=args.local_batch)
    rows = [[pt.world_size, pt.nodes, f"{pt.epoch_seconds:.2f}",
             f"{pt.speedup:.1f}x", f"{pt.efficiency:.3f}"] for pt in pts]
    print(f"cluster: {spec.name}")
    print(format_table(["workers", "nodes", "epoch (s)", "speedup", "eff"],
                       rows))
    return 0


def _cmd_info(args) -> int:
    from . import __version__

    print(f"repro {__version__} — reproduction of 'Distributed multigrid "
          f"neural solvers on megavoxel domains' (SC 2021)")
    print("components: autograd, nn (U-Net), optim, fem (+GMG), data "
          "(Sobol/Eq.10), multigrid (V/W/F/Half-V), distributed "
          "(ring all-reduce), perf (Table 6 models)")
    return 0


_COMMANDS = {
    "solve": _cmd_solve,
    "train": _cmd_train,
    "predict": _cmd_predict,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "scaling": _cmd_scaling,
    "info": _cmd_info,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
