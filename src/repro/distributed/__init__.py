"""Simulated distributed runtime: ring all-reduce, MPI-style collectives,
and the data-parallel trainer with Eq. 15 sharding."""

from .ring import ring_allreduce, RingStats
from .comm import SimulatedCommunicator, CommLog
from .data_parallel import (DataParallelTrainer, DPConfig, DPResult,
                            flatten_gradients, unflatten_to_gradients)
from .model_parallel import (HaloStats, ModelParallelConvStack,
                             halo_exchange, model_parallel_conv,
                             split_slabs, join_slabs)

__all__ = [
    "ring_allreduce", "RingStats",
    "SimulatedCommunicator", "CommLog",
    "DataParallelTrainer", "DPConfig", "DPResult",
    "flatten_gradients", "unflatten_to_gradients",
    "HaloStats", "ModelParallelConvStack", "halo_exchange",
    "model_parallel_conv", "split_slabs", "join_slabs",
]
