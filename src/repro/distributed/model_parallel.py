"""Model-parallel (spatial domain decomposition) extension.

The paper lists 'extending our approach to allow model-parallel
distributed deep learning' as future work (Sec. 5).  This module
implements the canonical design for fully convolutional nets: split the
field into slabs along one spatial axis across ranks, and exchange halo
layers with neighbours before every convolution so that each rank
computes exactly its slab of the global output.

Provided here for stride-1 'same'/'valid' convolution stacks — the shape
of computation that dominates inference of the trained solver — with
per-layer halo-traffic accounting.  Exactness against the single-rank
result is asserted in tests to machine precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backend import ops as B
from ..autograd import Tensor, no_grad
from ..nn.conv import ConvNd

__all__ = ["HaloStats", "split_slabs", "join_slabs", "halo_exchange",
           "extract_padded_block", "model_parallel_conv",
           "ModelParallelConvStack"]


@dataclass
class HaloStats:
    """Accounting of halo-exchange traffic."""

    exchanges: int = 0
    bytes_sent: int = 0

    def charge(self, arrays: list[np.ndarray]) -> None:
        self.exchanges += 1
        self.bytes_sent += int(sum(a.nbytes for a in arrays))


def split_slabs(x: np.ndarray, world_size: int, axis: int = 2
                ) -> list[np.ndarray]:
    """Split a batched field (N, C, *spatial) into per-rank slabs.

    The split axis size must divide evenly: all ranks get equal work,
    matching the paper's load-balance requirement.
    """
    size = x.shape[axis]
    if size % world_size:
        raise ValueError(f"axis size {size} not divisible by {world_size}")
    return [s.copy() for s in B.split(x, world_size, axis=axis)]


def join_slabs(slabs: list[np.ndarray], axis: int = 2) -> np.ndarray:
    """Concatenate rank slabs back into the global field."""
    return B.concatenate(slabs, axis=axis)


def _zero_halo(like: np.ndarray, axis: int, halo: int) -> np.ndarray:
    """Zero-filled halo slab matching ``like`` except along ``axis``."""
    shape = list(like.shape)
    shape[axis] = halo
    return np.zeros(shape, dtype=like.dtype)


def extract_padded_block(x: np.ndarray, axis: int, start: int, stop: int,
                         halo: int) -> tuple[np.ndarray, int]:
    """Slice ``x[..., start:stop, ...]`` along ``axis`` with up to ``halo``
    extra layers of neighbouring data on each side.

    This generalizes :func:`halo_exchange`'s boundary convention from
    equal slabs to arbitrary blocks: where a neighbour exists the halo is
    real data, and at the domain boundary the block is simply *cropped*
    (no zero fill), so a 'same' convolution applied to the block pads the
    physical boundary exactly like the full-field computation does.  This
    is the primitive of the tiled inference path in :mod:`repro.serve`.

    Returns ``(block, core_offset)`` where ``core_offset`` is the index of
    ``start`` inside the returned block along ``axis``.
    """
    size = x.shape[axis]
    if not (0 <= start < stop <= size):
        raise ValueError(f"block [{start}, {stop}) outside axis of size {size}")
    if halo < 0:
        raise ValueError("halo must be >= 0")
    lo = max(start - halo, 0)
    hi = min(stop + halo, size)
    index = [slice(None)] * x.ndim
    index[axis] = slice(lo, hi)
    return x[tuple(index)], start - lo


def halo_exchange(slabs: list[np.ndarray], halo: int, axis: int = 2,
                  stats: HaloStats | None = None) -> list[np.ndarray]:
    """Pad each slab with ``halo`` layers from its neighbours.

    Outermost ranks get zero halos on the domain boundary (matching the
    zero padding of a 'same' convolution).  Returns fresh padded arrays;
    inputs are untouched.
    """
    if halo < 0:
        raise ValueError("halo must be >= 0")
    p = len(slabs)
    if halo == 0:
        return [s.copy() for s in slabs]
    sent: list[np.ndarray] = []
    padded = []
    for r, s in enumerate(slabs):
        pieces = []
        if r > 0:
            left = B.take(slabs[r - 1],
                           range(slabs[r - 1].shape[axis] - halo,
                                 slabs[r - 1].shape[axis]), axis=axis)
            sent.append(left)
        else:
            left = _zero_halo(s, axis, halo)
        pieces.append(left)
        pieces.append(s)
        if r < p - 1:
            right = B.take(slabs[r + 1], range(halo), axis=axis)
            sent.append(right)
        else:
            right = _zero_halo(s, axis, halo)
        pieces.append(right)
        padded.append(B.concatenate(pieces, axis=axis))
    if stats is not None:
        stats.charge(sent)
    return padded


def model_parallel_conv(layer: ConvNd, slabs: list[np.ndarray],
                        axis: int = 2, stats: HaloStats | None = None
                        ) -> list[np.ndarray]:
    """Apply a stride-1 conv layer to sharded input, slab exactness
    guaranteed by a halo exchange of width ``padding`` along the split
    axis.

    Only 'same'-style convs (kernel = 2*padding + 1 on the split axis)
    are supported — the configuration used throughout the U-Net blocks.
    """
    d = axis - 2
    if any(s != 1 for s in layer.stride):
        raise ValueError("model-parallel conv requires stride 1")
    k = layer.kernel_size[d]
    p = layer.padding[d]
    if k != 2 * p + 1:
        raise ValueError(
            f"split-axis kernel {k} and padding {p} must satisfy k == 2p+1")

    padded = halo_exchange(slabs, halo=p, axis=axis, stats=stats)
    out = []
    with no_grad():
        for shard in padded:
            # Padding on the split axis is already provided by the halos.
            pad_spec = list(layer.padding)
            pad_spec[d] = 0
            from ..autograd import conv_nd

            y = conv_nd(Tensor(shard), layer.weight, layer.bias,
                        stride=1, padding=tuple(pad_spec))
            out.append(y.data)
    return out


class ModelParallelConvStack:
    """Inference of a stack of stride-1 conv layers (with optional
    pointwise activations) under slab decomposition.

    Parameters
    ----------
    layers:
        Sequence of (ConvNd, activation-or-None) pairs.  Activations are
        applied pointwise per rank (no communication).
    world_size:
        Number of slabs / simulated ranks.
    axis:
        Spatial axis to split (2 = the x axis of (N, C, X, Y[, Z])).
    """

    def __init__(self, layers, world_size: int, axis: int = 2) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.layers = list(layers)
        self.world_size = world_size
        self.axis = axis
        self.stats = HaloStats()

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the sharded stack and return the joined global output."""
        slabs = split_slabs(x, self.world_size, self.axis)
        for layer, act in self.layers:
            slabs = model_parallel_conv(layer, slabs, self.axis, self.stats)
            if act is not None:
                with no_grad():
                    slabs = [act(Tensor(s)).data for s in slabs]
        return join_slabs(slabs, self.axis)

    def serial_forward(self, x: np.ndarray) -> np.ndarray:
        """Single-rank reference for exactness checks."""
        with no_grad():
            t = Tensor(x)
            for layer, act in self.layers:
                t = layer(t)
                if act is not None:
                    t = act(t)
        return t.data
