"""Ring all-reduce (Sergeev & Del Balso / Baidu) — the collective behind
the paper's gradient averaging (Sec. 3.2).

Implements the genuine two-phase algorithm over simulated ranks:

1. *scatter-reduce*: p-1 steps; after step s, each rank holds a partial
   sum of one more chunk.  Rank r ends up owning the fully reduced chunk
   ``(r + 1) mod p``.
2. *all-gather*: p-1 steps circulating the reduced chunks.

Every step's per-rank traffic is accounted, so tests can check the
``2 (p-1)/p * N`` communication volume that underlies the paper's
``O(Nw + log p)`` scalability claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backend import get_pool, ops as B

__all__ = ["RingStats", "ring_allreduce"]


@dataclass
class RingStats:
    """Communication accounting for one ring all-reduce."""

    world_size: int
    message_elements: int
    itemsize: int
    steps: int = 0
    bytes_sent_per_rank: int = 0

    @property
    def message_bytes(self) -> int:
        return self.message_elements * self.itemsize

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent_per_rank * self.world_size

    @property
    def theoretical_bytes_per_rank(self) -> float:
        """The textbook 2 (p-1)/p * message volume."""
        p = self.world_size
        return 2.0 * (p - 1) / p * self.message_bytes


def _chunk_slices(n: int, p: int) -> list[slice]:
    """Split [0, n) into p contiguous nearly-equal chunks."""
    bounds = np.linspace(0, n, p + 1).astype(int)
    return [slice(int(bounds[i]), int(bounds[i + 1])) for i in range(p)]


def ring_allreduce(buffers: list[np.ndarray], average: bool = False
                   ) -> tuple[list[np.ndarray], RingStats]:
    """All-reduce 1-D buffers across simulated ranks via the ring algorithm.

    Parameters
    ----------
    buffers:
        One flat array per rank (identical shapes/dtypes).  Inputs are not
        modified.
    average:
        Divide the result by the world size (gradient averaging).

    Returns
    -------
    (reduced, stats):
        ``reduced[r]`` is the identical reduced vector for rank r (fresh
        arrays), plus the communication statistics.
    """
    p = len(buffers)
    if p == 0:
        raise ValueError("need at least one rank")
    n = buffers[0].size
    for b in buffers:
        if b.ndim != 1 or b.size != n:
            raise ValueError("all buffers must be flat arrays of equal size")
        if b.dtype != buffers[0].dtype:
            raise ValueError("all buffers must share a dtype")

    stats = RingStats(world_size=p, message_elements=n,
                      itemsize=buffers[0].dtype.itemsize)
    if p == 1:
        out = buffers[0].copy()
        if average:
            out = out / 1.0
        return [out], stats

    chunks = _chunk_slices(n, p)
    # Per-rank accumulation buffers come from the backend pool: gradient
    # fusion buffers are identical in shape every step, so steady-state
    # training reuses the same p allocations instead of churning them.
    pool = get_pool()
    work = []
    for b in buffers:
        w = pool.acquire(b.shape, np.float64)
        B.copyto(w, b)
        work.append(w)

    # Phase 1: scatter-reduce.  At step s, rank r sends chunk (r - s) mod p
    # to rank (r + 1) mod p, which accumulates it.
    for s in range(p - 1):
        sends = []
        for r in range(p):
            ci = (r - s) % p
            sends.append((r, ci, work[r][chunks[ci]].copy()))
        for r, ci, data in sends:
            dest = (r + 1) % p
            work[dest][chunks[ci]] += data
        stats.steps += 1
        # All ranks send one chunk per step; account the max chunk size
        # (ranks progress in lockstep).
        stats.bytes_sent_per_rank += int(
            max(ch.stop - ch.start for ch in chunks)) * stats.itemsize

    # Phase 2: all-gather.  Rank r owns reduced chunk (r + 1) mod p; at
    # step s it forwards chunk (r + 1 - s) mod p to rank (r + 1) mod p.
    for s in range(p - 1):
        sends = []
        for r in range(p):
            ci = (r + 1 - s) % p
            sends.append((r, ci, work[r][chunks[ci]].copy()))
        for r, ci, data in sends:
            dest = (r + 1) % p
            work[dest][chunks[ci]] = data
        stats.steps += 1
        stats.bytes_sent_per_rank += int(
            max(ch.stop - ch.start for ch in chunks)) * stats.itemsize

    if average:
        for w in work:
            w /= p
    out = [w.astype(buffers[0].dtype) for w in work]
    for w in work:
        pool.release(w)
    return out, stats
