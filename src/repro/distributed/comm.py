"""Simulated MPI communicator.

Mirrors the mpi4py collective surface (allreduce / bcast / allgather /
barrier, plus point-to-point ``send`` charging for the serving fleet's
routing hops) over ranks that live in one process.  Semantics are exact —
the Eq. 15 determinism arguments hold bit-for-bit — while *cost* is
tracked in a virtual clock fed by the performance model (Table 6
interconnects).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from .ring import RingStats, ring_allreduce

__all__ = ["CommLog", "SimulatedCommunicator"]


@dataclass
class CommLog:
    """Accumulated communication record of a simulated communicator."""

    allreduce_calls: int = 0
    allreduce_bytes: int = 0
    broadcast_calls: int = 0
    barrier_calls: int = 0
    send_calls: int = 0
    send_bytes: int = 0
    virtual_comm_seconds: float = 0.0


class SimulatedCommunicator:
    """A COMM_WORLD over ``world_size`` in-process ranks.

    Collectives take *lists indexed by rank* and return the same; this is
    the natural shape for a sequential simulation of SPMD code.  An
    optional ``time_model`` callable (message_bytes, world_size) -> seconds
    charges each collective to the virtual clock.
    """

    def __init__(self, world_size: int, time_model=None) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.time_model = time_model
        self.log = CommLog()
        # Collectives run in the sequential simulation loop, but the
        # serving fleet charges point-to-point hops from concurrent
        # worker threads — counter increments must not be lost.
        self._send_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def allreduce(self, buffers: list[np.ndarray], average: bool = False
                  ) -> list[np.ndarray]:
        """Ring all-reduce across ranks (sum or mean)."""
        self._check(buffers)
        reduced, stats = ring_allreduce(buffers, average=average)
        self.log.allreduce_calls += 1
        self.log.allreduce_bytes += stats.total_bytes
        self._charge(stats.message_bytes)
        return reduced

    def broadcast(self, value: np.ndarray, root: int = 0) -> list[np.ndarray]:
        """Broadcast root's array to all ranks (tree topology assumed for
        the cost model: log2(p) hops)."""
        if not 0 <= root < self.world_size:
            raise ValueError(f"invalid root {root}")
        value = np.asarray(value)
        self.log.broadcast_calls += 1
        self._charge(value.nbytes)
        return [value.copy() for _ in range(self.world_size)]

    def allgather(self, buffers: list[np.ndarray]) -> list[list[np.ndarray]]:
        """Each rank receives the list of every rank's buffer."""
        self._check(buffers)
        gathered = [b.copy() for b in buffers]
        self._charge(sum(b.nbytes for b in buffers))
        return [list(gathered) for _ in range(self.world_size)]

    def send(self, message_bytes: int) -> None:
        """Charge one point-to-point message to the virtual clock.

        The serving fleet uses this for its routing hops (request ω out
        to a shard, full field back), extending the Table 6 cost model
        from collectives to the request/response traffic of a simulated
        multi-host fleet.  Semantically a no-op — the simulation moves
        the actual arrays in-process — only the clock and the byte
        counters advance.
        """
        with self._send_lock:
            self.log.send_calls += 1
            self.log.send_bytes += int(message_bytes)
            self._charge(int(message_bytes))

    def barrier(self) -> None:
        self.log.barrier_calls += 1

    # ------------------------------------------------------------------ #
    def _check(self, buffers: list[np.ndarray]) -> None:
        if len(buffers) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} rank buffers, got {len(buffers)}")

    def _charge(self, message_bytes: int) -> None:
        if self.time_model is not None:
            self.log.virtual_comm_seconds += float(
                self.time_model(message_bytes, self.world_size))
