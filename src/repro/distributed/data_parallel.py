"""Data-parallel distributed training (Sec. 3.2 of the paper).

``DataParallelTrainer`` maintains ``world_size`` genuine model replicas,
splits every global mini-batch into equal local mini-batches (Eq. 15, via
:func:`repro.data.dataloader.shard_batch`), computes local gradients per
rank, averages them with a real ring all-reduce, and steps one optimizer
per rank.  Because replicas stay synchronized, the trained model equals a
single-worker run up to floating-point reassociation — the property the
paper calls 'results independent of the number of workers'.

Wall-clock cost of the *simulated* cluster is tracked on a virtual clock:
per step, compute time is the max over ranks (each charged
``measured_sample_time * local_batch``) plus the modeled ring-allreduce
time for ``Nw`` parameters over the chosen interconnect.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..backend import get_pool, ops as B
from ..autograd import Tensor
from ..data.dataloader import BatchSampler, shard_batch
from ..optim import Adam, SGD
from .comm import SimulatedCommunicator

__all__ = ["DPConfig", "DPResult", "DataParallelTrainer",
           "flatten_gradients", "unflatten_to_gradients"]


def flatten_gradients(params) -> np.ndarray:
    """Concatenate parameter gradients into one flat float64 vector
    (a Horovod-style fusion buffer).  Missing grads contribute zeros."""
    parts = []
    for p in params:
        g = p.grad if p.grad is not None else np.zeros_like(p.data)
        parts.append(np.asarray(g, dtype=np.float64).ravel())
    return B.concatenate(parts) if parts else np.zeros(0)


def unflatten_to_gradients(flat: np.ndarray, params) -> None:
    """Scatter a flat vector back into ``p.grad`` slots."""
    pos = 0
    for p in params:
        n = p.data.size
        p.grad = flat[pos:pos + n].reshape(p.data.shape).astype(p.data.dtype)
        pos += n
    if pos != flat.size:
        raise ValueError(f"flat vector size {flat.size} != total params {pos}")


@dataclass
class DPConfig:
    """Distributed training configuration."""

    world_size: int = 4
    batch_size: int = 8          # global mini-batch (paper: 64)
    lr: float = 1e-3
    optimizer: str = "adam"
    seed: int = 0
    shuffle: bool = True
    check_sync: bool = False     # assert replica synchronization each step
    sync_batchnorm_stats: bool = True


@dataclass
class DPResult:
    """Outcome of a distributed training run."""

    world_size: int
    losses: list[float] = field(default_factory=list)
    measured_wall: float = 0.0
    virtual_compute_seconds: float = 0.0
    virtual_comm_seconds: float = 0.0
    steps: int = 0
    # Buffer-pool accounting (allocation traffic the pool absorbed):
    # per-epoch recycled bytes, and the pool's high-water mark after the
    # run — the number to size BufferPool.max_bytes from.
    pool_bytes_recycled: list[int] = field(default_factory=list)
    pool_high_water_bytes: int = 0

    @property
    def virtual_epoch_seconds(self) -> float:
        n_epochs = max(len(self.losses), 1)
        return (self.virtual_compute_seconds + self.virtual_comm_seconds) / n_epochs


class DataParallelTrainer:
    """Simulated-cluster data-parallel trainer.

    Parameters
    ----------
    model_factory:
        Zero-arg callable constructing one replica.  All replicas are
        synchronized to replica 0's initial weights via a broadcast.
    problem, dataset:
        As for :class:`repro.core.trainer.Trainer`.  The dataset is
        augmented so its length is divisible by the global batch size and
        the global batch by the world size (paper's augmentation step).
    comm_time_model:
        Optional (message_bytes, p) -> seconds for the virtual clock.
    compute_time_per_sample:
        Optional seconds/sample for the virtual clock; when None the
        measured host time of each rank's work is used instead.
    """

    def __init__(self, model_factory, problem, dataset, config: DPConfig,
                 comm_time_model=None,
                 compute_time_per_sample: float | None = None) -> None:
        cfg = config
        if cfg.batch_size % cfg.world_size:
            raise ValueError("global batch size must divide by world size")
        self.config = cfg
        self.problem = problem
        self.dataset = dataset.padded_to_multiple(
            np.lcm(cfg.batch_size, cfg.world_size))
        self.comm = SimulatedCommunicator(cfg.world_size,
                                          time_model=comm_time_model)
        self.compute_time_per_sample = compute_time_per_sample

        # Build replicas and broadcast rank-0 weights.
        self.replicas = [model_factory() for _ in range(cfg.world_size)]
        state = self.replicas[0].state_dict()
        for rep in self.replicas[1:]:
            rep.load_state_dict(state)
        self.optimizers = [self._make_optimizer(rep) for rep in self.replicas]
        self.global_epoch = 0

    def _make_optimizer(self, model):
        cfg = self.config
        if cfg.optimizer == "adam":
            return Adam(model.parameters(), lr=cfg.lr)
        if cfg.optimizer == "sgd":
            return SGD(model.parameters(), lr=cfg.lr)
        raise ValueError(f"unknown optimizer {cfg.optimizer!r}")

    @property
    def model(self):
        """Rank-0 replica (the canonical trained model)."""
        return self.replicas[0]

    # ------------------------------------------------------------------ #
    def train_epochs(self, resolution: int, n_epochs: int) -> DPResult:
        cfg = self.config
        result = DPResult(world_size=cfg.world_size)
        inputs = self.dataset.inputs_at(resolution)
        nus = self.dataset.nu_at(resolution)
        chi_int, u_bc = self.problem.masks(resolution, dtype=inputs.dtype)
        energy = self.problem.energy(resolution, reduction="mean")
        sampler = BatchSampler(len(self.dataset), cfg.batch_size,
                               seed=cfg.seed, shuffle=cfg.shuffle)
        pool = get_pool()
        start = time.perf_counter()
        for _ in range(n_epochs):
            recycled_before = pool.stats.bytes_recycled
            epoch_loss, batch_count = 0.0, 0
            for global_idx in sampler.batches(self.global_epoch):
                loss = self._step(global_idx, inputs, nus, chi_int, u_bc,
                                  energy, result)
                epoch_loss += loss
                batch_count += 1
            result.losses.append(epoch_loss / max(batch_count, 1))
            result.pool_bytes_recycled.append(
                pool.stats.bytes_recycled - recycled_before)
            if cfg.sync_batchnorm_stats:
                self._sync_bn_stats()
            self.global_epoch += 1
        result.measured_wall = time.perf_counter() - start
        result.pool_high_water_bytes = pool.stats.high_water_bytes
        result.virtual_comm_seconds = self.comm.log.virtual_comm_seconds
        return result

    # ------------------------------------------------------------------ #
    def _step(self, global_idx: np.ndarray, inputs, nus, chi_int, u_bc,
              energy, result: DPResult) -> float:
        cfg = self.config
        shards = shard_batch(global_idx, cfg.world_size)
        grads, losses, rank_times = [], [], []
        for rank, (rep, opt, shard) in enumerate(
                zip(self.replicas, self.optimizers, shards)):
            t0 = time.perf_counter()
            rep.train()
            x = Tensor(inputs[shard])
            u = rep(x, chi_int, u_bc)
            loss = energy(u, nus[shard])
            opt.zero_grad()
            loss.backward()
            rank_times.append(time.perf_counter() - t0)
            grads.append(flatten_gradients(rep.parameters()))
            losses.append(float(loss.data))

        reduced = self.comm.allreduce(grads, average=True)
        for rep, opt, g in zip(self.replicas, self.optimizers, reduced):
            unflatten_to_gradients(g, rep.parameters())
            opt.step()

        # Virtual clock: lockstep workers wait for the slowest.
        if self.compute_time_per_sample is not None:
            local_bs = len(global_idx) // cfg.world_size
            result.virtual_compute_seconds += (
                self.compute_time_per_sample * local_bs)
        else:
            result.virtual_compute_seconds += max(rank_times)
        result.steps += 1

        if cfg.check_sync:
            self._assert_synced()
        # Global loss = mean of equally-sized local losses.
        return float(B.mean(losses))

    # ------------------------------------------------------------------ #
    def _sync_bn_stats(self) -> None:
        """Average batch-norm running statistics across replicas.

        Local batches see different samples, so running stats drift apart;
        averaging them keeps eval-mode behaviour rank-independent.
        """
        names = [n for n, _ in self.replicas[0].named_buffers()]
        for name in names:
            stacked = []
            for rep in self.replicas:
                for n, buf in rep.named_buffers():
                    if n == name:
                        stacked.append(np.asarray(buf, dtype=np.float64))
                        break
            mean = B.mean(stacked, axis=0)
            for rep in self.replicas:
                self._set_buffer(rep, name, mean)

    @staticmethod
    def _set_buffer(module, dotted: str, value: np.ndarray) -> None:
        parts = dotted.split(".")
        target = module
        for p in parts[:-1]:
            target = getattr(target, p)
        old = target._buffers[parts[-1]]
        target.update_buffer(parts[-1], value.astype(np.asarray(old).dtype))

    def _assert_synced(self, atol: float = 0.0) -> None:
        ref = self.replicas[0].state_dict()
        for i, rep in enumerate(self.replicas[1:], start=1):
            for k, v in rep.state_dict().items():
                if not B.allclose(v, ref[k], atol=atol, rtol=0):
                    raise AssertionError(
                        f"replica {i} desynchronized at {k!r}")
