"""Op-level profiler for the autograd engine.

'No optimization without measuring' — this context manager hooks
``Function.apply`` and the backward dispatcher to record per-op call
counts and wall time, so hot spots (invariably the N-d convolutions) can
be identified without external tooling.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field

from .function import Function

__all__ = ["OpStats", "PoolReport", "Profile", "profile"]


@dataclass
class OpStats:
    """Accumulated statistics for one op type."""

    calls: int = 0
    seconds: float = 0.0

    @property
    def ms_per_call(self) -> float:
        return self.seconds / self.calls * 1e3 if self.calls else 0.0


@dataclass
class PoolReport:
    """Buffer-pool activity observed during one profiling session.

    Deltas of the active backend's :class:`repro.backend.PoolStats`
    between ``__enter__`` and ``__exit__`` — plus the pool's (cumulative)
    high-water mark, the number to size ``max_bytes`` from.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_recycled: int = 0
    high_water_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def line(self) -> str:
        return (f"buffer pool: {self.hits} hits / {self.misses} misses "
                f"({100 * self.hit_rate:.0f}%), "
                f"{self.bytes_recycled >> 20} MiB recycled, "
                f"high water {self.high_water_bytes >> 20} MiB")


@dataclass
class Profile:
    """Result of a profiling session."""

    forward: dict[str, OpStats] = field(default_factory=dict)
    backward: dict[str, OpStats] = field(default_factory=dict)
    pool: PoolReport | None = None

    def total_seconds(self) -> float:
        return (sum(s.seconds for s in self.forward.values())
                + sum(s.seconds for s in self.backward.values()))

    def table(self, top: int = 10) -> str:
        """Render the hottest ops, forward and backward merged."""
        merged: dict[str, OpStats] = defaultdict(OpStats)
        for direction, stats in (("fwd", self.forward), ("bwd", self.backward)):
            for name, s in stats.items():
                key = f"{name}.{direction}"
                merged[key].calls += s.calls
                merged[key].seconds += s.seconds
        rows = sorted(merged.items(), key=lambda kv: -kv[1].seconds)[:top]
        total = max(self.total_seconds(), 1e-12)
        lines = [f"{'op':<28}{'calls':>8}{'total s':>10}{'ms/call':>10}{'%':>7}"]
        for name, s in rows:
            lines.append(f"{name:<28}{s.calls:>8}{s.seconds:>10.4f}"
                         f"{s.ms_per_call:>10.3f}{100 * s.seconds / total:>6.1f}%")
        if self.pool is not None:
            lines.append(self.pool.line())
        return "\n".join(lines)


class profile:
    """Context manager capturing op timings.

    Usage::

        with profile() as prof:
            loss = model(x, chi, ubc); loss.backward()
        print(prof.table())
    """

    def __enter__(self) -> Profile:
        from ..backend import get_pool

        self.result = Profile()
        self._pool_before = get_pool().stats.snapshot()
        self._orig_apply = Function.apply.__func__

        profiler = self.result

        def timed_apply(cls, *args, **kwargs):
            t0 = time.perf_counter()
            out = self._orig_apply(cls, *args, **kwargs)
            dt = time.perf_counter() - t0
            stats = profiler.forward.setdefault(cls.__name__, OpStats())
            stats.calls += 1
            stats.seconds += dt
            # Wrap backward dispatch once per op instance.
            if out._fn is not None:
                fn = out._fn
                orig_backward = fn.backward

                class _Timed(fn):  # type: ignore[misc, valid-type]
                    @staticmethod
                    def backward(ctx, grad):
                        t0 = time.perf_counter()
                        res = orig_backward(ctx, grad)
                        dt = time.perf_counter() - t0
                        bstats = profiler.backward.setdefault(
                            fn.__name__, OpStats())
                        bstats.calls += 1
                        bstats.seconds += dt
                        return res

                _Timed.__name__ = fn.__name__
                out._fn = _Timed
            return out

        Function.apply = classmethod(timed_apply)
        return self.result

    def __exit__(self, *exc) -> None:
        from ..backend import get_pool

        Function.apply = classmethod(self._orig_apply)
        after, before = get_pool().stats, self._pool_before
        self.result.pool = PoolReport(
            hits=after.hits - before.hits,
            misses=after.misses - before.misses,
            evictions=after.evictions - before.evictions,
            bytes_recycled=after.bytes_recycled - before.bytes_recycled,
            high_water_bytes=after.high_water_bytes)
