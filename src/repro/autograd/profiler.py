"""Op-level profiler for the autograd engine.

'No optimization without measuring' — this context manager hooks
``Function.apply`` and the backward dispatcher to record per-op call
counts and wall time, so hot spots (invariably the N-d convolutions) can
be identified without external tooling.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field

from .function import Function

__all__ = ["OpStats", "Profile", "profile"]


@dataclass
class OpStats:
    """Accumulated statistics for one op type."""

    calls: int = 0
    seconds: float = 0.0

    @property
    def ms_per_call(self) -> float:
        return self.seconds / self.calls * 1e3 if self.calls else 0.0


@dataclass
class Profile:
    """Result of a profiling session."""

    forward: dict[str, OpStats] = field(default_factory=dict)
    backward: dict[str, OpStats] = field(default_factory=dict)

    def total_seconds(self) -> float:
        return (sum(s.seconds for s in self.forward.values())
                + sum(s.seconds for s in self.backward.values()))

    def table(self, top: int = 10) -> str:
        """Render the hottest ops, forward and backward merged."""
        merged: dict[str, OpStats] = defaultdict(OpStats)
        for direction, stats in (("fwd", self.forward), ("bwd", self.backward)):
            for name, s in stats.items():
                key = f"{name}.{direction}"
                merged[key].calls += s.calls
                merged[key].seconds += s.seconds
        rows = sorted(merged.items(), key=lambda kv: -kv[1].seconds)[:top]
        total = max(self.total_seconds(), 1e-12)
        lines = [f"{'op':<28}{'calls':>8}{'total s':>10}{'ms/call':>10}{'%':>7}"]
        for name, s in rows:
            lines.append(f"{name:<28}{s.calls:>8}{s.seconds:>10.4f}"
                         f"{s.ms_per_call:>10.3f}{100 * s.seconds / total:>6.1f}%")
        return "\n".join(lines)


class profile:
    """Context manager capturing op timings.

    Usage::

        with profile() as prof:
            loss = model(x, chi, ubc); loss.backward()
        print(prof.table())
    """

    def __enter__(self) -> Profile:
        self.result = Profile()
        self._orig_apply = Function.apply.__func__

        profiler = self.result

        def timed_apply(cls, *args, **kwargs):
            t0 = time.perf_counter()
            out = self._orig_apply(cls, *args, **kwargs)
            dt = time.perf_counter() - t0
            stats = profiler.forward.setdefault(cls.__name__, OpStats())
            stats.calls += 1
            stats.seconds += dt
            # Wrap backward dispatch once per op instance.
            if out._fn is not None:
                fn = out._fn
                orig_backward = fn.backward

                class _Timed(fn):  # type: ignore[misc, valid-type]
                    @staticmethod
                    def backward(ctx, grad):
                        t0 = time.perf_counter()
                        res = orig_backward(ctx, grad)
                        dt = time.perf_counter() - t0
                        bstats = profiler.backward.setdefault(
                            fn.__name__, OpStats())
                        bstats.calls += 1
                        bstats.seconds += dt
                        return res

                _Timed.__name__ = fn.__name__
                out._fn = _Timed
            return out

        Function.apply = classmethod(timed_apply)
        return self.result

    def __exit__(self, *exc) -> None:
        Function.apply = classmethod(self._orig_apply)
