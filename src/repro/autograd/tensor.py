"""The :class:`Tensor` class: a NumPy array plus reverse-mode autodiff.

Tensors form a DAG as operations are applied; ``Tensor.backward`` performs a
reverse topological traversal accumulating gradients into ``.grad`` of every
leaf with ``requires_grad=True``.

Only the operations needed by the MGDiffNet reproduction are provided, but
each is fully general (arbitrary rank, broadcasting where meaningful).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from ..backend import ops as B
from ..backend import is_lazy, realize
from ..backend.dtype import get_default_dtype, set_default_dtype
from .function import Context, Function, is_grad_enabled

__all__ = ["Tensor", "set_default_dtype", "get_default_dtype"]


class Tensor:
    """N-dimensional array with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_ctx", "_fn", "_parents")

    def __init__(self, data: Any, requires_grad: bool = False, dtype: Any = None) -> None:
        if isinstance(data, Tensor):
            data = data.data
        if isinstance(data, (np.ndarray, np.generic)) or is_lazy(data):
            data = B.asarray(data)
            if dtype is not None and data.dtype != np.dtype(dtype):
                data = data.astype(dtype)
        else:
            data = B.asarray(data, dtype=dtype or get_default_dtype())
        if not np.issubdtype(data.dtype, np.floating):
            data = data.astype(get_default_dtype())
        self.data: np.ndarray = data
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad)
        self._ctx: Context | None = None
        self._fn: type[Function] | None = None
        self._parents: tuple = ()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy; realizes lazy graphs)."""
        return realize(self.data)

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(
                f"Tensor.item() requires a single-element tensor, "
                f"got shape {self.shape} ({self.size} elements)")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a view of the data severed from the autodiff graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def astype(self, dtype: Any) -> "Tensor":
        return Tensor(self.data.astype(dtype), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False, dtype: Any = None) -> "Tensor":
        return Tensor(B.zeros(shape, dtype=dtype or get_default_dtype()), requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False, dtype: Any = None) -> "Tensor":
        return Tensor(B.ones(shape, dtype=dtype or get_default_dtype()), requires_grad)

    @staticmethod
    def randn(*shape: int, rng: np.random.Generator | None = None,
              requires_grad: bool = False, dtype: Any = None) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape).astype(
            dtype or get_default_dtype()), requires_grad)

    @staticmethod
    def from_numpy(arr: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return Tensor(arr, requires_grad)

    # ------------------------------------------------------------------ #
    # Backward
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = B.ones_like(self.data)
        grad = B.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p is not None and p.requires_grad:
                    stack.append((p, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node._fn is None:
                # Leaf: accumulate.
                if node.grad is None:
                    node.grad = g.copy()
                else:
                    node.grad = node.grad + g
                continue
            parent_grads = node._fn.backward(node._ctx, g)
            if not isinstance(parent_grads, tuple):
                parent_grads = (parent_grads,)
            for p, pg in zip(node._parents, parent_grads):
                if p is None or pg is None or not p.requires_grad:
                    continue
                if id(p) in grads:
                    grads[id(p)] = grads[id(p)] + pg
                else:
                    grads[id(p)] = pg
            # Interior-node gradients are deliberately not retained: only
            # leaves accumulate into ``.grad`` (see the leaf branch above),
            # which keeps memory at O(parameters) instead of O(graph).
            # Use ``.detach()``-free leaf tensors to inspect interior grads.

    # ------------------------------------------------------------------ #
    # Arithmetic (operator protocol) — implementations in ops_basic
    # ------------------------------------------------------------------ #
    def _binary(self, other: Any, fn_name: str, swap: bool = False):
        from . import ops_basic as ob

        other_t = other if isinstance(other, Tensor) else Tensor(
            B.asarray(other, dtype=self.dtype))
        fn = getattr(ob, fn_name)
        return fn(other_t, self) if swap else fn(self, other_t)

    def __add__(self, other: Any) -> "Tensor":
        return self._binary(other, "add")

    def __radd__(self, other: Any) -> "Tensor":
        return self._binary(other, "add", swap=True)

    def __sub__(self, other: Any) -> "Tensor":
        return self._binary(other, "sub")

    def __rsub__(self, other: Any) -> "Tensor":
        return self._binary(other, "sub", swap=True)

    def __mul__(self, other: Any) -> "Tensor":
        return self._binary(other, "mul")

    def __rmul__(self, other: Any) -> "Tensor":
        return self._binary(other, "mul", swap=True)

    def __truediv__(self, other: Any) -> "Tensor":
        return self._binary(other, "div")

    def __rtruediv__(self, other: Any) -> "Tensor":
        return self._binary(other, "div", swap=True)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        from . import ops_basic as ob

        return ob.matmul(self, other)

    def __pow__(self, exponent: float) -> "Tensor":
        from . import ops_basic as ob

        return ob.power(self, exponent)

    def __neg__(self) -> "Tensor":
        from . import ops_basic as ob

        return ob.neg(self)

    def __getitem__(self, idx: Any) -> "Tensor":
        from . import ops_basic as ob

        return ob.getitem(self, idx)

    # ------------------------------------------------------------------ #
    # Common method forms
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        from . import ops_reduce as ord

        return ord.sum_(self, axis=axis, keepdims=keepdims)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        from . import ops_reduce as ord

        return ord.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        from . import ops_reduce as ord

        return ord.max_(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        from . import ops_basic as ob

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ob.reshape(self, shape)

    def transpose(self, *axes: int) -> "Tensor":
        from . import ops_basic as ob

        return ob.transpose(self, axes or None)

    def flip(self, axis: int | tuple[int, ...]) -> "Tensor":
        from . import ops_basic as ob

        return ob.flip(self, axis)

    def exp(self) -> "Tensor":
        from . import ops_activation as oa

        return oa.exp(self)

    def log(self) -> "Tensor":
        from . import ops_activation as oa

        return oa.log(self)

    def sigmoid(self) -> "Tensor":
        from . import ops_activation as oa

        return oa.sigmoid(self)

    def tanh(self) -> "Tensor":
        from . import ops_activation as oa

        return oa.tanh(self)

    def relu(self) -> "Tensor":
        from . import ops_activation as oa

        return oa.relu(self)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        from . import ops_activation as oa

        return oa.leaky_relu(self, negative_slope)

    def abs(self) -> "Tensor":
        from . import ops_activation as oa

        return oa.abs_(self)

    def sqrt(self) -> "Tensor":
        from . import ops_basic as ob

        return ob.power(self, 0.5)
