"""Elementwise arithmetic, linear algebra and shape-manipulation ops.

All ops broadcast following NumPy semantics; backward passes reduce
gradients back to the operand shapes via :func:`unbroadcast`.
"""

from __future__ import annotations

from itertools import accumulate
from typing import Any, Sequence

import numpy as np

from ..backend import ops as B
from .function import Context, Function, unbroadcast
from .tensor import Tensor

__all__ = [
    "add", "sub", "mul", "div", "neg", "power", "matmul", "reshape",
    "transpose", "moveaxis", "getitem", "pad", "concat", "flip", "where",
    "clip", "zero_stuff",
]


class Add(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.meta["shapes"] = (a.shape, b.shape)
        return a + b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        sa, sb = ctx.meta["shapes"]
        return unbroadcast(grad, sa), unbroadcast(grad, sb)


class Sub(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.meta["shapes"] = (a.shape, b.shape)
        return a - b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        sa, sb = ctx.meta["shapes"]
        return unbroadcast(grad, sa), unbroadcast(-grad, sb)


class Mul(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.save_for_backward(a, b)
        return a * b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        a, b = ctx.saved
        return unbroadcast(grad * b, a.shape), unbroadcast(grad * a, b.shape)


class Div(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.save_for_backward(a, b)
        return a / b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        a, b = ctx.saved
        ga = unbroadcast(grad / b, a.shape)
        gb = unbroadcast(-grad * a / (b * b), b.shape)
        return ga, gb


class Neg(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        return -a

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (-grad,)


class Power(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, exponent: float) -> np.ndarray:
        ctx.save_for_backward(a)
        ctx.meta["p"] = exponent
        return a ** exponent

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (a,) = ctx.saved
        p = ctx.meta["p"]
        return grad * p * a ** (p - 1.0), None


class MatMul(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.save_for_backward(a, b)
        return a @ b

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        a, b = ctx.saved
        if a.ndim == 1 and b.ndim == 1:
            return grad * b, grad * a
        if a.ndim == 1:
            ga = grad @ B.swapaxes(b, -1, -2)
            gb = B.outer(a, grad) if b.ndim == 2 else a[:, None] * grad[None, :]
            return ga, gb
        if b.ndim == 1:
            ga = grad[..., None] * b
            # grad shape == a.shape[:-1]; gb = sum over all leading axes.
            gb = B.einsum("...i,...->i", a, grad)
            return ga, gb
        ga = grad @ B.swapaxes(b, -1, -2)
        gb = B.swapaxes(a, -1, -2) @ grad
        return unbroadcast(ga, a.shape), unbroadcast(gb, b.shape)


class Reshape(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        ctx.meta["shape"] = a.shape
        return a.reshape(shape)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return grad.reshape(ctx.meta["shape"]), None


class Transpose(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axes: tuple[int, ...] | None) -> np.ndarray:
        if axes is None:
            axes = tuple(reversed(range(a.ndim)))
        ctx.meta["axes"] = axes
        return B.transpose(a, axes)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        axes = ctx.meta["axes"]
        inv = B.argsort(axes)
        return B.transpose(grad, inv), None


class MoveAxis(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, source: int, destination: int) -> np.ndarray:
        ctx.meta["src"], ctx.meta["dst"] = source, destination
        return B.moveaxis(a, source, destination)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return B.moveaxis(grad, ctx.meta["dst"], ctx.meta["src"]), None, None


class GetItem(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, idx: Any) -> np.ndarray:
        ctx.meta["shape"] = a.shape
        ctx.meta["idx"] = idx
        ctx.meta["dtype"] = a.dtype
        return a[idx]

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        out = B.zeros(ctx.meta["shape"], dtype=ctx.meta["dtype"])
        B.scatter_add(out, ctx.meta["idx"], grad)
        return out, None


class Pad(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, pad_width: Sequence[tuple[int, int]],
                mode: str = "constant", value: float = 0.0) -> np.ndarray:
        pad_width = tuple(tuple(p) for p in pad_width)
        ctx.meta["pad"] = pad_width
        ctx.meta["mode"] = mode
        if mode == "constant":
            return B.pad(a, pad_width, mode="constant", constant_values=value)
        return B.pad(a, pad_width, mode=mode)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        pad = ctx.meta["pad"]
        mode = ctx.meta["mode"]
        slices = tuple(slice(lo, g - hi if hi else None)
                       for (lo, hi), g in zip(pad, grad.shape))
        g = grad[slices]
        if mode == "constant":
            return g, None
        raise NotImplementedError(f"backward not implemented for pad mode {mode!r}")


class Concat(Function):
    @staticmethod
    def forward(ctx: Context, *arrays: np.ndarray, axis: int = 0) -> np.ndarray:
        ctx.meta["axis"] = axis
        ctx.meta["sizes"] = [a.shape[axis] for a in arrays]
        return B.concatenate(arrays, axis=axis)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        axis = ctx.meta["axis"]
        sizes = ctx.meta["sizes"]
        splits = list(accumulate(sizes))[:-1]
        return tuple(B.split(grad, splits, axis=axis))


class Flip(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axis: int | tuple[int, ...]) -> np.ndarray:
        ctx.meta["axis"] = axis
        return B.flip(a, axis=axis)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return B.flip(grad, axis=ctx.meta["axis"]).copy(), None


class Where(Function):
    @staticmethod
    def forward(ctx: Context, cond: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ctx.meta["cond"] = cond
        ctx.meta["shapes"] = (a.shape, b.shape)
        return B.where(cond, a, b)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        cond = ctx.meta["cond"]
        sa, sb = ctx.meta["shapes"]
        ga = unbroadcast(B.where(cond, grad, 0.0), sa)
        gb = unbroadcast(B.where(cond, 0.0, grad), sb)
        return None, ga, gb


class Clip(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, lo: float, hi: float) -> np.ndarray:
        ctx.meta["mask"] = (a >= lo) & (a <= hi)
        return B.clip(a, lo, hi)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return grad * ctx.meta["mask"], None, None


class ZeroStuff(Function):
    """Insert ``stride-1`` zeros between samples along spatial axes.

    Used to express transposed convolution as a regular convolution:
    ``conv_transpose(x, W, s) == conv(zero_stuff(x, s), flip(W), 1)`` up to
    padding bookkeeping.  Spatial axes are all axes from ``first_axis`` on.
    """

    @staticmethod
    def forward(ctx: Context, a: np.ndarray, stride: tuple[int, ...],
                first_axis: int = 2) -> np.ndarray:
        spatial = a.shape[first_axis:]
        out_spatial = tuple((s - 1) * st + 1 for s, st in zip(spatial, stride))
        out = B.zeros(a.shape[:first_axis] + out_spatial, dtype=a.dtype)
        idx = (slice(None),) * first_axis + tuple(
            slice(None, None, st) for st in stride)
        out[idx] = a
        ctx.meta["idx"] = idx
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return grad[ctx.meta["idx"]].copy(), None, None


# --------------------------------------------------------------------- #
# Friendly functional wrappers
# --------------------------------------------------------------------- #

def add(a: Tensor, b: Tensor) -> Tensor:
    return Add.apply(a, b)


def sub(a: Tensor, b: Tensor) -> Tensor:
    return Sub.apply(a, b)


def mul(a: Tensor, b: Tensor) -> Tensor:
    return Mul.apply(a, b)


def div(a: Tensor, b: Tensor) -> Tensor:
    return Div.apply(a, b)


def neg(a: Tensor) -> Tensor:
    return Neg.apply(a)


def power(a: Tensor, exponent: float) -> Tensor:
    return Power.apply(a, exponent)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    return MatMul.apply(a, b)


def reshape(a: Tensor, shape: tuple[int, ...]) -> Tensor:
    return Reshape.apply(a, shape)


def transpose(a: Tensor, axes: tuple[int, ...] | None = None) -> Tensor:
    return Transpose.apply(a, axes)


def moveaxis(a: Tensor, source: int, destination: int) -> Tensor:
    return MoveAxis.apply(a, source, destination)


def getitem(a: Tensor, idx: Any) -> Tensor:
    return GetItem.apply(a, idx)


def pad(a: Tensor, pad_width: Sequence[tuple[int, int]], value: float = 0.0) -> Tensor:
    return Pad.apply(a, pad_width, mode="constant", value=value)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    return Concat.apply(*tensors, axis=axis)


def flip(a: Tensor, axis: int | tuple[int, ...]) -> Tensor:
    return Flip.apply(a, axis)


def where(cond: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    return Where.apply(cond, a, b)


def clip(a: Tensor, lo: float, hi: float) -> Tensor:
    return Clip.apply(a, lo, hi)


def zero_stuff(a: Tensor, stride: tuple[int, ...], first_axis: int = 2) -> Tensor:
    return ZeroStuff.apply(a, stride, first_axis)
