"""Pointwise nonlinearities and transcendental functions."""

from __future__ import annotations

import numpy as np

from ..backend import ops as B
from .function import Context, Function
from .tensor import Tensor

__all__ = ["exp", "log", "sigmoid", "tanh", "relu", "leaky_relu", "abs_", "softplus"]


class Exp(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        out = B.exp(a)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (out,) = ctx.saved
        return (grad * out,)


class Log(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        ctx.save_for_backward(a)
        return B.log(a)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (a,) = ctx.saved
        return (grad / a,)


class Sigmoid(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        # Numerically stable logistic.
        out = B.empty_like(a)
        pos = a >= 0
        out[pos] = 1.0 / (1.0 + B.exp(-a[pos]))
        e = B.exp(a[~pos])
        out[~pos] = e / (1.0 + e)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (out,) = ctx.saved
        return (grad * out * (1.0 - out),)


class Tanh(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        out = B.tanh(a)
        ctx.save_for_backward(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (out,) = ctx.saved
        return (grad * (1.0 - out * out),)


class ReLU(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        mask = a > 0
        ctx.meta["mask"] = mask
        return a * mask

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (grad * ctx.meta["mask"],)


class LeakyReLU(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, negative_slope: float = 0.01) -> np.ndarray:
        mask = a > 0
        ctx.meta["mask"] = mask
        ctx.meta["slope"] = negative_slope
        return B.where(mask, a, negative_slope * a)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        mask = ctx.meta["mask"]
        slope = ctx.meta["slope"]
        return grad * B.where(mask, 1.0, slope).astype(grad.dtype), None


class Abs(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        ctx.meta["sign"] = B.sign(a)
        return B.abs(a)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        return (grad * ctx.meta["sign"],)


class Softplus(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray) -> np.ndarray:
        ctx.save_for_backward(a)
        return B.logaddexp(0.0, a).astype(a.dtype)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        (a,) = ctx.saved
        sig = B.empty_like(a)
        pos = a >= 0
        sig[pos] = 1.0 / (1.0 + B.exp(-a[pos]))
        e = B.exp(a[~pos])
        sig[~pos] = e / (1.0 + e)
        return (grad * sig,)


def exp(a: Tensor) -> Tensor:
    return Exp.apply(a)


def log(a: Tensor) -> Tensor:
    return Log.apply(a)


def sigmoid(a: Tensor) -> Tensor:
    return Sigmoid.apply(a)


def tanh(a: Tensor) -> Tensor:
    return Tanh.apply(a)


def relu(a: Tensor) -> Tensor:
    return ReLU.apply(a)


def leaky_relu(a: Tensor, negative_slope: float = 0.01) -> Tensor:
    return LeakyReLU.apply(a, negative_slope)


def abs_(a: Tensor) -> Tensor:
    return Abs.apply(a)


def softplus(a: Tensor) -> Tensor:
    return Softplus.apply(a)
