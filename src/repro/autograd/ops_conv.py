"""N-dimensional convolution, transposed convolution and pooling.

The convolution is dimension agnostic (the same code path serves the 2D
and 3D MGDiffNet variants).  *How* each conv executes is decided by the
planning engine in :mod:`repro.backend.conv_plan`: per-offset
``tensordot`` contractions (O(input) peak memory — the property that lets
the 3D U-Net run on modest hosts) or a single im2col/GEMM (fastest for
the small-kernel/many-channel signatures of the U-Net trunk).  Plans are
memoized per (shape, kernel, stride) signature, so steady-state training
pays a dict lookup.

Layouts follow the common deep-learning convention:

* inputs  ``(N, C_in, *spatial)``
* conv weights ``(C_out, C_in, *kernel)``
* transposed-conv weights ``(C_in, C_out, *kernel)``
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..backend import ops as B
from ..backend import realize
from ..backend.conv_plan import (
    get_conv_transpose_mode, plan_conv, plan_conv_transpose,
    run_conv_backward, run_conv_forward, run_conv_transpose_backward,
    run_conv_transpose_forward,
)
from .function import Context, Function
from .tensor import Tensor
from . import ops_basic as ob

__all__ = [
    "conv_nd", "conv_transpose_nd", "max_pool_nd", "avg_pool_nd",
    "conv_output_shape", "conv_transpose_output_shape", "tuplify",
]


def tuplify(value: int | Sequence[int], ndim: int) -> tuple[int, ...]:
    """Broadcast a scalar hyperparameter to a per-axis tuple."""
    if isinstance(value, int):
        return (value,) * ndim
    value = tuple(int(v) for v in value)
    if len(value) != ndim:
        raise ValueError(f"expected {ndim} values, got {value!r}")
    return value


def conv_output_shape(spatial: Sequence[int], kernel: Sequence[int],
                      stride: Sequence[int], padding: Sequence[int]) -> tuple[int, ...]:
    """Spatial output shape of an N-d convolution."""
    out = []
    for s, k, st, p in zip(spatial, kernel, stride, padding):
        o = (s + 2 * p - k) // st + 1
        if o <= 0:
            raise ValueError(
                f"conv output size {o} <= 0 for input {s}, kernel {k}, "
                f"stride {st}, padding {p}")
        out.append(o)
    return tuple(out)


def conv_transpose_output_shape(spatial: Sequence[int], kernel: Sequence[int],
                                stride: Sequence[int], padding: Sequence[int],
                                output_padding: Sequence[int]) -> tuple[int, ...]:
    """Spatial output shape of an N-d transposed convolution."""
    return tuple((s - 1) * st - 2 * p + k + op
                 for s, k, st, p, op in zip(spatial, kernel, stride, padding, output_padding))


class ConvNd(Function):
    """N-dimensional cross-correlation (the deep-learning 'convolution').

    Execution strategy (tensordot vs im2col) is delegated to the memoized
    conv planner; both paths are numerically equivalent and both are
    exercised by the parity tests.
    """

    @staticmethod
    def forward(ctx: Context, x: np.ndarray, w: np.ndarray, b: np.ndarray | None,
                stride: tuple[int, ...], padding: tuple[int, ...]) -> np.ndarray:
        # The planner works on concrete strided buffers: crossing into it
        # is a realize barrier for the lazy backend.
        x, w = realize(x), realize(w)
        nd = x.ndim - 2
        n, cin = x.shape[:2]
        cout = w.shape[0]
        kernel = w.shape[2:]
        if w.shape[1] != cin:
            raise ValueError(f"weight C_in {w.shape[1]} != input C_in {cin}")

        if any(padding):
            padw = ((0, 0), (0, 0)) + tuple((p, p) for p in padding)
            xp = realize(B.pad(x, padw))
        else:
            xp = x
        out_spatial = conv_output_shape(xp.shape[2:], kernel, stride, (0,) * nd)

        plan = plan_conv(x.shape, w.shape, stride, padding, x.dtype)
        out = run_conv_forward(plan, xp, w, stride, out_spatial)
        if b is not None:
            # Dispatch the epilogue through the registry so the lazy
            # backend can fuse conv -> bias-add -> activation.
            out = B.asarray(out) + realize(b).reshape((1, cout) + (1,) * nd)

        ctx.save_for_backward(xp, w)
        ctx.meta.update(stride=stride, padding=padding, kernel=kernel,
                        out_spatial=out_spatial, has_bias=b is not None,
                        x_shape=x.shape, plan=plan)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        xp, w = ctx.saved
        stride = ctx.meta["stride"]
        padding = ctx.meta["padding"]
        kernel = ctx.meta["kernel"]
        out_spatial = ctx.meta["out_spatial"]
        plan = ctx.meta["plan"]
        nd = len(kernel)

        grad = realize(grad)
        gmoved = realize(B.moveaxis(grad, 1, -1))            # (N, *So, Cout)
        dxp, dw = run_conv_backward(plan, xp, w, gmoved, stride, out_spatial)
        # Strip padding.
        if any(padding):
            sl = (slice(None), slice(None)) + tuple(
                slice(p, s - p if p else None)
                for p, s in zip(padding, dxp.shape[2:]))
            dx = dxp[sl]
        else:
            dx = dxp
        db = None
        if ctx.meta["has_bias"]:
            db = grad.sum(axis=(0,) + tuple(range(2, 2 + nd)))
        return dx, dw, db, None, None


class ConvTransposeNd(Function):
    """N-dimensional transposed convolution via the output-scatter plan.

    Contracts input channels against the kernel and scatter-adds each tap
    directly into the (strided) output — no zero-stuffed intermediate is
    ever materialized, unlike the composed reference path.  The data
    gradient is a planned *forward* convolution of the re-padded output
    gradient, and the weight gradient a single strided-window
    contraction, so both directions stay on the GEMM engines.
    """

    @staticmethod
    def forward(ctx: Context, x: np.ndarray, w: np.ndarray, b: np.ndarray | None,
                stride: tuple[int, ...], padding: tuple[int, ...],
                output_padding: tuple[int, ...]) -> np.ndarray:
        # The scatter engines work on concrete strided buffers: crossing
        # into them is a realize barrier for the lazy backend.
        x, w = realize(x), realize(w)
        nd = x.ndim - 2
        cin, cout = w.shape[:2]
        if x.shape[1] != cin:
            raise ValueError(f"weight C_in {w.shape[0]} != input C_in {x.shape[1]}")

        plan = plan_conv_transpose(x.shape, w.shape, stride, padding,
                                   output_padding, x.dtype)
        out = run_conv_transpose_forward(plan, x, w)
        if b is not None:
            # Dispatch the epilogue through the registry so the lazy
            # backend can fuse the bias-add into the following activation.
            out = B.asarray(out) + realize(b).reshape((1, cout) + (1,) * nd)

        ctx.save_for_backward(x, w)
        ctx.meta.update(plan=plan, has_bias=b is not None, nd=nd)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        x, w = ctx.saved
        plan = ctx.meta["plan"]
        nd = ctx.meta["nd"]
        grad = realize(grad)
        dx, dw = run_conv_transpose_backward(plan, x, w, grad)
        db = None
        if ctx.meta["has_bias"]:
            db = grad.sum(axis=(0,) + tuple(range(2, 2 + nd)))
        return dx, dw, db, None, None, None


class MaxPoolNd(Function):
    """Non-overlapping max pooling (stride == kernel); sizes must divide."""

    @staticmethod
    def forward(ctx: Context, x: np.ndarray, kernel: tuple[int, ...]) -> np.ndarray:
        nd = x.ndim - 2
        spatial = x.shape[2:]
        for s, k in zip(spatial, kernel):
            if s % k:
                raise ValueError(f"spatial size {s} not divisible by pool {k}")
        new_shape = x.shape[:2]
        for s, k in zip(spatial, kernel):
            new_shape += (s // k, k)
        windows = x.reshape(new_shape)
        pool_axes = tuple(3 + 2 * i for i in range(nd))
        out = windows.max(axis=pool_axes, keepdims=True)
        mask = windows == out
        counts = mask.sum(axis=pool_axes, keepdims=True)
        ctx.meta.update(mask=mask, counts=counts, pool_axes=pool_axes,
                        x_shape=x.shape, new_shape=new_shape)
        return out.squeeze(axis=pool_axes)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        mask = ctx.meta["mask"]
        counts = ctx.meta["counts"]
        pool_axes = ctx.meta["pool_axes"]
        g = grad
        for ax in pool_axes:
            g = B.expand_dims(g, ax)
        dx = (mask * (g / counts)).reshape(ctx.meta["x_shape"])
        return dx, None


class AvgPoolNd(Function):
    """Non-overlapping average pooling (stride == kernel)."""

    @staticmethod
    def forward(ctx: Context, x: np.ndarray, kernel: tuple[int, ...]) -> np.ndarray:
        nd = x.ndim - 2
        spatial = x.shape[2:]
        for s, k in zip(spatial, kernel):
            if s % k:
                raise ValueError(f"spatial size {s} not divisible by pool {k}")
        new_shape = x.shape[:2]
        for s, k in zip(spatial, kernel):
            new_shape += (s // k, k)
        pool_axes = tuple(3 + 2 * i for i in range(nd))
        out = x.reshape(new_shape).mean(axis=pool_axes)
        ctx.meta.update(pool_axes=pool_axes, x_shape=x.shape, kernel=kernel,
                        count=math.prod(kernel))
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        pool_axes = ctx.meta["pool_axes"]
        kernel = ctx.meta["kernel"]
        shape = ctx.meta["x_shape"]
        g = grad / ctx.meta["count"]
        for ax in pool_axes:
            g = B.expand_dims(g, ax)
        # Broadcast each singleton pool axis back to its kernel extent.
        target = list(g.shape)
        for k, ax in zip(kernel, pool_axes):
            target[ax] = k
        dx = B.broadcast_to(g, target).reshape(shape).copy()
        return dx, None


def conv_nd(x: Tensor, w: Tensor, b: Tensor | None = None,
            stride: int | Sequence[int] = 1,
            padding: int | Sequence[int] = 0) -> Tensor:
    """Functional N-d convolution over Tensor operands."""
    nd = x.ndim - 2
    return ConvNd.apply(x, w, b, tuplify(stride, nd), tuplify(padding, nd))


def conv_transpose_nd(x: Tensor, w: Tensor, b: Tensor | None = None,
                      stride: int | Sequence[int] = 1,
                      padding: int | Sequence[int] = 0,
                      output_padding: int | Sequence[int] = 0) -> Tensor:
    """Functional N-d transposed convolution.

    Two numerically equivalent paths, selected by
    :func:`repro.backend.conv_plan.set_conv_transpose_mode` (or
    ``REPRO_CONVT_PLAN``):

    * ``scatter`` (default) — the planned output-scatter GEMM engine
      (:class:`ConvTransposeNd`): no zero-stuffed intermediate, dedicated
      backward.
    * ``compose`` — the original composition of differentiable
      primitives (zero-stuffing, padding, weight flip, channel transpose,
      stride-1 conv), kept as the parity reference.
    """
    nd = x.ndim - 2
    stride_t = tuplify(stride, nd)
    padding_t = tuplify(padding, nd)
    outpad_t = tuplify(output_padding, nd)
    kernel = w.shape[2:]
    for k, p, op in zip(kernel, padding_t, outpad_t):
        if k - 1 - p < 0:
            raise ValueError("padding larger than kernel-1 is unsupported")
        if op >= max(stride_t):
            raise ValueError("output_padding must be < stride")

    if get_conv_transpose_mode() == "scatter":
        return ConvTransposeNd.apply(x, w, b, stride_t, padding_t, outpad_t)

    xz = ob.zero_stuff(x, stride_t) if any(s > 1 for s in stride_t) else x
    padw = [(0, 0), (0, 0)] + [
        (k - 1 - p, k - 1 - p + op)
        for k, p, op in zip(kernel, padding_t, outpad_t)]
    xp = ob.pad(xz, padw)
    wf = ob.flip(w, axis=tuple(range(2, 2 + nd)))
    wt = ob.moveaxis(wf, 0, 1)  # (Cout, Cin, *K)
    return conv_nd(xp, wt, b, stride=1, padding=0)


def max_pool_nd(x: Tensor, kernel: int | Sequence[int] = 2) -> Tensor:
    nd = x.ndim - 2
    return MaxPoolNd.apply(x, tuplify(kernel, nd))


def avg_pool_nd(x: Tensor, kernel: int | Sequence[int] = 2) -> Tensor:
    nd = x.ndim - 2
    return AvgPoolNd.apply(x, tuplify(kernel, nd))
