"""Reverse-mode automatic differentiation over NumPy arrays.

This subpackage is the computational substrate of the reproduction: a
tape-based autodiff engine with the N-dimensional convolution family needed
by the fully convolutional MGDiffNet (Sec. 3.1.2 of the paper).

Public surface::

    from repro.autograd import Tensor, no_grad
    from repro.autograd import conv_nd, conv_transpose_nd, batch_norm
"""

from .function import Function, Context, no_grad, is_grad_enabled
from .tensor import Tensor, set_default_dtype, get_default_dtype
from .ops_basic import (
    add, sub, mul, div, neg, power, matmul, reshape, transpose, moveaxis,
    getitem, pad, concat, flip, where, clip, zero_stuff,
)
from .ops_reduce import sum_ as sum, mean, max_ as max, min_ as min  # noqa: A001
from .ops_activation import (
    exp, log, sigmoid, tanh, relu, leaky_relu, abs_ as abs, softplus,  # noqa: A001
)
from .ops_conv import (
    conv_nd, conv_transpose_nd, max_pool_nd, avg_pool_nd,
    conv_output_shape, conv_transpose_output_shape, tuplify,
)
from .ops_norm import batch_norm
from .gradcheck import gradcheck, numerical_gradient
from .profiler import profile, Profile, OpStats

__all__ = [
    "Tensor", "Function", "Context", "no_grad", "is_grad_enabled",
    "set_default_dtype", "get_default_dtype",
    "add", "sub", "mul", "div", "neg", "power", "matmul", "reshape",
    "transpose", "moveaxis", "getitem", "pad", "concat", "flip", "where",
    "clip", "zero_stuff", "sum", "mean", "max", "min",
    "exp", "log", "sigmoid", "tanh", "relu", "leaky_relu", "abs", "softplus",
    "conv_nd", "conv_transpose_nd", "max_pool_nd", "avg_pool_nd",
    "conv_output_shape", "conv_transpose_output_shape", "tuplify",
    "batch_norm", "gradcheck", "numerical_gradient",
    "profile", "Profile", "OpStats",
]
