"""Batch normalization over (N, C, *spatial) inputs."""

from __future__ import annotations

import numpy as np

from ..backend import ops as B
from .function import Context, Function
from .tensor import Tensor

__all__ = ["batch_norm"]


class BatchNorm(Function):
    """Training-mode batch norm; statistics are taken over (N, *spatial).

    The backward pass uses the standard fused expression

        dx = gamma * inv_std / M * (M*dy - sum(dy) - xhat * sum(dy*xhat))

    where M is the number of reduced elements per channel.
    """

    @staticmethod
    def forward(ctx: Context, x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                eps: float = 1e-5) -> np.ndarray:
        nd = x.ndim - 2
        axes = (0,) + tuple(range(2, 2 + nd))
        mean = x.mean(axis=axes, keepdims=True)
        var = x.var(axis=axes, keepdims=True)
        inv_std = 1.0 / B.sqrt(var + eps)
        xhat = (x - mean) * inv_std
        gshape = (1, -1) + (1,) * nd
        out = gamma.reshape(gshape) * xhat + beta.reshape(gshape)
        m = x.size // x.shape[1]
        ctx.meta.update(xhat=xhat, inv_std=inv_std, axes=axes, m=m,
                        gamma=gamma, gshape=gshape)
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        xhat = ctx.meta["xhat"]
        inv_std = ctx.meta["inv_std"]
        axes = ctx.meta["axes"]
        m = ctx.meta["m"]
        gamma = ctx.meta["gamma"].reshape(ctx.meta["gshape"])

        dgamma = (grad * xhat).sum(axis=axes)
        dbeta = grad.sum(axis=axes)
        sum_dy = grad.sum(axis=axes, keepdims=True)
        sum_dy_xhat = (grad * xhat).sum(axis=axes, keepdims=True)
        dx = gamma * inv_std / m * (m * grad - sum_dy - xhat * sum_dy_xhat)
        return dx, dgamma, dbeta, None


class BatchNormInference(Function):
    """Evaluation-mode batch norm using fixed running statistics."""

    @staticmethod
    def forward(ctx: Context, x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                running_mean: np.ndarray, running_var: np.ndarray,
                eps: float = 1e-5) -> np.ndarray:
        nd = x.ndim - 2
        gshape = (1, -1) + (1,) * nd
        inv_std = 1.0 / B.sqrt(running_var.reshape(gshape) + eps)
        xhat = (x - running_mean.reshape(gshape)) * inv_std
        ctx.meta.update(xhat=xhat, inv_std=inv_std, gamma=gamma, gshape=gshape,
                        axes=(0,) + tuple(range(2, 2 + nd)))
        return gamma.reshape(gshape) * xhat + beta.reshape(gshape)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        xhat = ctx.meta["xhat"]
        inv_std = ctx.meta["inv_std"]
        gamma = ctx.meta["gamma"].reshape(ctx.meta["gshape"])
        axes = ctx.meta["axes"]
        dgamma = (grad * xhat).sum(axis=axes)
        dbeta = grad.sum(axis=axes)
        dx = grad * gamma * inv_std
        return dx, dgamma, dbeta, None, None, None


def batch_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               running_mean: np.ndarray | None = None,
               running_var: np.ndarray | None = None,
               training: bool = True, eps: float = 1e-5) -> Tensor:
    """Apply batch normalization; see :class:`repro.nn.norm.BatchNorm`."""
    if training:
        return BatchNorm.apply(x, gamma, beta, eps)
    if running_mean is None or running_var is None:
        raise ValueError("running statistics required in eval mode")
    return BatchNormInference.apply(x, gamma, beta, running_mean, running_var, eps)
