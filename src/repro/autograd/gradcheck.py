"""Numerical gradient checking for autograd functions.

Compares reverse-mode gradients against central finite differences in
float64.  Used throughout the test suite to certify every op.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..backend import ops as B
from .tensor import Tensor

__all__ = ["gradcheck", "numerical_gradient"]


def numerical_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. inputs[index]."""
    x = inputs[index]
    grad = np.zeros_like(x.data, dtype=np.float64)
    flat = x.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = orig - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = orig
        gflat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
              eps: float = 1e-6, rtol: float = 1e-4, atol: float = 1e-6,
              raise_on_fail: bool = True) -> bool:
    """Verify analytic gradients of ``fn`` against finite differences.

    All inputs must be float64 tensors with ``requires_grad=True`` where a
    gradient is expected.  Returns True on success.
    """
    for t in inputs:
        if t.dtype != np.float64:
            raise ValueError("gradcheck requires float64 inputs")
        t.zero_grad()

    out = fn(*inputs)
    out.sum().backward() if out.data.size > 1 else out.backward()

    ok = True
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not B.allclose(analytic, numeric, rtol=rtol, atol=atol):
            ok = False
            if raise_on_fail:
                err = B.abs(analytic - numeric).max()
                raise AssertionError(
                    f"gradcheck failed for input {i}: max abs err {err:.3e}\n"
                    f"analytic[:5]={np.asarray(analytic).reshape(-1)[:5]}\n"
                    f"numeric [:5]={numeric.reshape(-1)[:5]}")
    return ok
