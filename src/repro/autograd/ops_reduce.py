"""Reduction operations: sum, mean, max, min."""

from __future__ import annotations

import math

import numpy as np

from ..backend import ops as B
from .function import Context, Function
from .tensor import Tensor

__all__ = ["sum_", "mean", "max_", "min_"]


def _normalize_axis(axis, ndim: int) -> tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


class Sum(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        ctx.meta["shape"] = a.shape
        ctx.meta["axis"] = _normalize_axis(axis, a.ndim)
        ctx.meta["keepdims"] = keepdims
        return a.sum(axis=axis, keepdims=keepdims)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        shape = ctx.meta["shape"]
        axis = ctx.meta["axis"]
        if not ctx.meta["keepdims"]:
            for ax in sorted(axis):
                grad = B.expand_dims(grad, ax)
        return B.broadcast_to(grad, shape).copy(), None, None


class Mean(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        ctx.meta["shape"] = a.shape
        axes = _normalize_axis(axis, a.ndim)
        ctx.meta["axis"] = axes
        ctx.meta["keepdims"] = keepdims
        ctx.meta["count"] = math.prod(a.shape[ax] for ax in axes)
        return a.mean(axis=axis, keepdims=keepdims)

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        shape = ctx.meta["shape"]
        axis = ctx.meta["axis"]
        if not ctx.meta["keepdims"]:
            for ax in sorted(axis):
                grad = B.expand_dims(grad, ax)
        return (B.broadcast_to(grad, shape) / ctx.meta["count"]).copy(), None, None


class Max(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        out = a.max(axis=axis, keepdims=True)
        axes = _normalize_axis(axis, a.ndim)
        # Ties split gradient evenly (matches subgradient convention).
        mask = (a == out)
        counts = mask.sum(axis=tuple(axes), keepdims=True)
        ctx.meta["mask"] = mask
        ctx.meta["counts"] = counts
        ctx.meta["axis"] = axes
        ctx.meta["keepdims"] = keepdims
        if not keepdims:
            out = out.squeeze(axis=tuple(axes)) if axis is not None else out.reshape(())
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        axes = ctx.meta["axis"]
        if not ctx.meta["keepdims"]:
            for ax in sorted(axes):
                grad = B.expand_dims(grad, ax)
        return grad * ctx.meta["mask"] / ctx.meta["counts"], None, None


class Min(Function):
    @staticmethod
    def forward(ctx: Context, a: np.ndarray, axis=None, keepdims: bool = False) -> np.ndarray:
        out = a.min(axis=axis, keepdims=True)
        axes = _normalize_axis(axis, a.ndim)
        mask = (a == out)
        counts = mask.sum(axis=tuple(axes), keepdims=True)
        ctx.meta["mask"] = mask
        ctx.meta["counts"] = counts
        ctx.meta["axis"] = axes
        ctx.meta["keepdims"] = keepdims
        if not keepdims:
            out = out.squeeze(axis=tuple(axes)) if axis is not None else out.reshape(())
        return out

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray):
        axes = ctx.meta["axis"]
        if not ctx.meta["keepdims"]:
            for ax in sorted(axes):
                grad = B.expand_dims(grad, ax)
        return grad * ctx.meta["mask"] / ctx.meta["counts"], None, None


def sum_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return Sum.apply(a, axis=axis, keepdims=keepdims)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return Mean.apply(a, axis=axis, keepdims=keepdims)


def max_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return Max.apply(a, axis=axis, keepdims=keepdims)


def min_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    return Min.apply(a, axis=axis, keepdims=keepdims)
