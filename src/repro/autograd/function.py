"""Autograd Function machinery.

Every differentiable operation is a subclass of :class:`Function` with a
static ``forward`` that computes a raw :class:`numpy.ndarray` result and a
static ``backward`` that maps the incoming gradient to gradients for each
positional input.  ``Function.apply`` wires the op into the autodiff graph.

The design mirrors the classic tape-based reverse-mode pattern: the graph is
built eagerly during the forward pass and traversed in reverse topological
order by :meth:`repro.autograd.tensor.Tensor.backward`.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

__all__ = ["Context", "Function", "no_grad", "is_grad_enabled"]


class _GradMode(threading.local):
    """Thread-local flag controlling whether the graph is recorded."""

    def __init__(self) -> None:
        self.enabled = True


_grad_mode = _GradMode()


def is_grad_enabled() -> bool:
    """Return True when operations record the autodiff graph."""
    return _grad_mode.enabled


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self) -> "no_grad":
        self._prev = _grad_mode.enabled
        _grad_mode.enabled = False
        return self

    def __exit__(self, *exc: Any) -> None:
        _grad_mode.enabled = self._prev


class Context:
    """Scratch space a Function uses to stash values for backward."""

    __slots__ = ("saved", "meta")

    def __init__(self) -> None:
        self.saved: tuple = ()
        self.meta: dict[str, Any] = {}

    def save_for_backward(self, *arrays: Any) -> None:
        self.saved = arrays


class Function:
    """Base class for differentiable operations.

    Subclasses implement::

        @staticmethod
        def forward(ctx, *args, **kwargs) -> np.ndarray: ...

        @staticmethod
        def backward(ctx, grad: np.ndarray) -> tuple: ...

    ``backward`` must return one gradient (or ``None``) per positional
    argument of ``forward``, in order.  Non-tensor positional arguments
    receive ``None``.
    """

    @staticmethod
    def forward(ctx: Context, *args: Any, **kwargs: Any) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Any:
        raise NotImplementedError

    @classmethod
    def apply(cls, *args: Any, **kwargs: Any):
        from .tensor import Tensor

        ctx = Context()
        raw_args = tuple(a.data if isinstance(a, Tensor) else a for a in args)
        out_data = cls.forward(ctx, *raw_args, **kwargs)

        requires = is_grad_enabled() and any(
            isinstance(a, Tensor) and a.requires_grad for a in args
        )
        out = Tensor(out_data, requires_grad=requires)
        if requires:
            out._ctx = ctx
            out._fn = cls
            out._parents = tuple(a if isinstance(a, Tensor) else None for a in args)
        return out


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after NumPy broadcasting.

    Sums over prepended axes and over axes that were broadcast from 1.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes where original dim was 1 but grad dim > 1.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)
