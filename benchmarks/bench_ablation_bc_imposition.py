"""ABLATION — exact BC masking vs penalty enforcement (paper
contribution 1).

The paper motivates its exact-imposition loss by the hyper-parameter
sensitivity of penalty methods (Sec. 1, limitation 1).  We train the same
network with (a) the paper's chi-masking and (b) boundary penalties at
three weights, and compare the FEM agreement and the Dirichlet violation.

Shape checks: exact masking has *zero* boundary violation by
construction and beats (or matches) every penalty weight on FEM error,
while penalty quality visibly depends on lambda.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D, TrainConfig
from repro.autograd import Tensor
from repro.core import compare_fields
from repro.core.penalty import BoundaryPenaltyLoss
from repro.data.dataloader import BatchSampler
from repro.optim import Adam

try:
    from .common import bench_cli, report
except ImportError:
    from common import bench_cli, report

RESOLUTION = 16
EPOCHS = 60
HEADER = ["method", "rel_l2_vs_fem", "bc_violation_rms"]


def _train_masked(problem, dataset):
    from repro import Trainer

    model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=4)
    trainer = Trainer(model, problem, dataset,
                      TrainConfig(batch_size=8, lr=3e-3))
    trainer.train_epochs(RESOLUTION, EPOCHS)
    return model


def _train_penalty(problem, dataset, weight: float):
    """Same network/optimizer, but weak BCs: no masking, penalty loss."""
    model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=4)
    bc = problem.bc(RESOLUTION)
    loss_fn = BoundaryPenaltyLoss(problem.energy(RESOLUTION), bc, weight)
    optimizer = Adam(model.parameters(), lr=3e-3)
    inputs = dataset.inputs_at(RESOLUTION)
    nus = dataset.nu_at(RESOLUTION)
    sampler = BatchSampler(len(dataset), 8, seed=0)
    model.train()
    for epoch in range(EPOCHS):
        for idx in sampler.batches(epoch):
            u = model.net(Tensor(inputs[idx]))  # raw output, no masking
            loss = loss_fn(u, nus[idx])
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
    return model, loss_fn


def _evaluate(problem, model, omegas, loss_fn=None):
    errs, violations = [], []
    bc = problem.bc(RESOLUTION)
    for omega in omegas:
        ref = problem.fem_solve(omega)
        if loss_fn is None:
            pred = model.predict(problem, omega)
            violation = 0.0
        else:
            from repro.autograd import no_grad

            grid = problem.grid(RESOLUTION)
            x = Tensor(problem.field.log_nu(omega, grid)[None, None]
                       .astype(np.float32))
            model.eval()
            with no_grad():
                pred = model.net(x).data[0, 0]
            model.train()
            violation = loss_fn.boundary_violation(pred[None, None])
        errs.append(compare_fields(pred, ref).rel_l2)
        violations.append(violation)
    return float(np.mean(errs)), float(np.mean(violations))


def _run():
    problem = PoissonProblem2D(resolution=RESOLUTION)
    dataset = problem.make_dataset(8)
    omegas = dataset.omegas[:4]

    rows = []
    masked = _train_masked(problem, dataset)
    err, vio = _evaluate(problem, masked, omegas)
    rows.append(["exact masking (paper)", round(err, 4), round(vio, 6)])

    for weight in (1.0, 30.0, 1000.0):
        model, loss_fn = _train_penalty(problem, dataset, weight)
        err, vio = _evaluate(problem, model, omegas, loss_fn)
        rows.append([f"penalty lambda={weight:g}", round(err, 4),
                     round(vio, 6)])
    return rows


def test_ablation_bc_imposition(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("ablation_bc_imposition", HEADER, rows)
    exact = rows[0]
    penalties = rows[1:]
    assert exact[2] == 0.0  # masking satisfies BCs identically
    assert all(p[2] > 0.0 for p in penalties)  # penalties never do
    # Exact masking matches or beats the best penalty configuration.
    best_penalty_err = min(p[1] for p in penalties)
    assert exact[1] <= best_penalty_err * 1.3
    # Penalty quality depends on lambda (the tuning burden the paper
    # eliminates): spread across weights is substantial.
    errs = [p[1] for p in penalties]
    assert max(errs) > min(errs) * 1.3


if __name__ == "__main__":
    bench_cli("bench_ablation_bc_imposition")
    report("ablation_bc_imposition", HEADER, _run())
