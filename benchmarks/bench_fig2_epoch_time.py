"""FIG2 — epoch time vs degrees of freedom (paper Fig. 2).

The paper shows per-epoch training time growing superlinearly with the 2D
resolution (8.76 s at 2^8 DoF up to 237.8 s at 2^18 on their hardware).
We measure the same series at downscaled resolutions and check the shape:
time grows, and the growth is at least linear in DoF for the larger sizes.
"""

from __future__ import annotations

import pytest

from repro import PoissonProblem2D
from repro.perf import measure_epoch_time

try:
    from .common import bench_cli, report, small_model_2d, write_bench_json
except ImportError:  # pragma: no cover - script mode
    from common import bench_cli, report, small_model_2d, write_bench_json

RESOLUTIONS = (8, 16, 32, 64)


def _run() -> list[list]:
    model = small_model_2d()
    rows = []
    for r in RESOLUTIONS:
        problem = PoissonProblem2D(resolution=r)
        pt = measure_epoch_time(model, problem, r, n_samples=8, batch_size=4)
        rows.append([r, pt.dofs, round(pt.epoch_seconds, 4)])
    return rows


def test_fig2_epoch_time(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("fig2_epoch_time", ["resolution", "dofs", "epoch_seconds"], rows)
    times = [row[2] for row in rows]
    dofs = [row[1] for row in rows]
    # Shape check: monotone growth, and superlinear onset at the top end
    # (paper: 62.9 -> 237.8 s for a 4x DoF step).
    assert all(b > a for a, b in zip(times, times[1:]))
    top_ratio = times[-1] / times[-2]
    dof_ratio = dofs[-1] / dofs[-2]
    assert top_ratio > 0.5 * dof_ratio


if __name__ == "__main__":
    args = bench_cli(
        "bench_fig2_epoch_time",
        extra_args=lambda p: p.add_argument(
            "--json", default=None, metavar="PATH",
            help="also write the rows as a JSON artifact (used by CI)"))
    rows = _run()
    report("fig2_epoch_time", ["resolution", "dofs", "epoch_seconds"], rows)
    if args.json:
        # The active configuration (CLI flags and the REPRO_BACKEND /
        # REPRO_CONV_PLAN env vars) lands in the shared schema header.
        write_bench_json(args.json, "fig2_epoch_time", {
            "rows": [{"resolution": r, "dofs": d, "epoch_seconds": t}
                     for r, d, t in rows]})
        print(f"wrote {args.json}")
