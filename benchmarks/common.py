"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at
downscaled size (see DESIGN.md's per-experiment index), prints the
paper-style rows, and writes a CSV under ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro import MGDiffNet, MGTrainConfig
from repro.utils import format_table, write_csv

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def report(name: str, header: Sequence[str], rows: list[Sequence]) -> None:
    """Print a paper-style table and persist it as CSV."""
    print(f"\n=== {name} ===")
    print(format_table(header, rows))
    write_csv(RESULTS_DIR / f"{name}.csv", header, rows)


def small_model_2d(rng: int = 42, base_filters: int = 8,
                   depth: int = 2) -> MGDiffNet:
    return MGDiffNet(ndim=2, base_filters=base_filters, depth=depth, rng=rng)


def small_model_3d(rng: int = 42, base_filters: int = 8,
                   depth: int = 2) -> MGDiffNet:
    return MGDiffNet(ndim=3, base_filters=base_filters, depth=depth, rng=rng)


def bench_config(max_epochs: int = 30, restriction_epochs: int = 3,
                 batch_size: int = 8, lr: float = 3e-3) -> MGTrainConfig:
    """Downscaled training budget shared by the table benchmarks."""
    return MGTrainConfig(batch_size=batch_size, lr=lr,
                         restriction_epochs=restriction_epochs,
                         max_epochs_per_level=max_epochs,
                         patience=8, min_delta=5e-4)
