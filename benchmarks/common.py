"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at
downscaled size (see DESIGN.md's per-experiment index), prints the
paper-style rows, and writes a CSV under ``benchmarks/results/``.

Every ``bench_*.py`` accepts a shared CLI when run as a script::

    python benchmarks/bench_fig2_epoch_time.py --backend numpy --dtype float64

``--backend`` selects a registered array backend (``repro.backend``),
``--dtype`` the default floating precision, and ``--conv-plan`` forces a
conv execution path — so backends and engines can be A/B-compared from
the command line on identical workloads.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Sequence

import numpy as np

from repro import MGDiffNet, MGTrainConfig
from repro.backend import (
    available_backends, set_backend, set_conv_plan_mode, set_default_dtype,
)
from repro.utils import format_table, write_csv

RESULTS_DIR = Path(__file__).resolve().parent / "results"

BENCH_SCHEMA_VERSION = 1


def write_bench_json(path: str | Path, bench: str, result: dict,
                     gate: str | None = None) -> Path:
    """Write one ``BENCH_*.json`` CI artifact on the shared schema.

    Every emitter goes through here so artifacts stay machine-comparable
    across benchmarks and PRs::

        {"schema": 1, "bench": <name>,
         "backend": <active backend>, "dtype": <default dtype>,
         "conv_plan": <active conv mode>,
         "gate": "pass" | "fail" | "skip:<reason>" | null,
         "result": {...}}                       # bench-specific payload

    ``gate`` records the outcome of the bench's own pass/fail (or why it
    was skipped, e.g. no C compiler), so CI can distinguish "regressed"
    from "could not measure here".
    """
    from repro.backend import get_backend, get_conv_plan_mode, get_default_dtype

    payload = {
        "schema": BENCH_SCHEMA_VERSION,
        "bench": bench,
        "backend": get_backend().name,
        "dtype": np.dtype(get_default_dtype()).name,
        "conv_plan": get_conv_plan_mode(),
        "gate": gate,
        "result": result,
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2))
    return path


def report(name: str, header: Sequence[str], rows: list[Sequence]) -> None:
    """Print a paper-style table and persist it as CSV."""
    print(f"\n=== {name} ===")
    print(format_table(header, rows))
    write_csv(RESULTS_DIR / f"{name}.csv", header, rows)


def add_backend_args(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the shared ``--backend``/``--dtype``/``--conv-plan`` flags."""
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help=f"array backend to activate (registered: {', '.join(available_backends())})")
    parser.add_argument(
        "--dtype", default=None, choices=["float32", "float64"],
        help="default floating dtype for tensors built from Python data")
    parser.add_argument(
        "--conv-plan", default=None,
        choices=["auto", "im2col", "tensordot", "autotune"],
        help="force a conv execution path (default: planner decides; "
             "'autotune' times both engines and persists the winner)")
    parser.add_argument(
        "--autotune", action="store_true",
        help="shorthand for --conv-plan autotune")
    return parser


def bench_cli(description: str = "repro benchmark",
              argv: Sequence[str] | None = None,
              extra_args=None) -> argparse.Namespace:
    """Parse the shared benchmark CLI and apply the backend selection.

    ``extra_args`` is an optional callable receiving the parser so a
    benchmark can add its own flags.  Returns the parsed namespace.
    """
    parser = argparse.ArgumentParser(description=description)
    add_backend_args(parser)
    if extra_args is not None:
        extra_args(parser)
    args = parser.parse_args(argv)
    if args.backend:
        set_backend(args.backend)
    if args.dtype:
        set_default_dtype(args.dtype)
    if args.conv_plan:
        set_conv_plan_mode(args.conv_plan)
    elif getattr(args, "autotune", False):
        set_conv_plan_mode("autotune")
    return args


def small_model_2d(rng: int = 42, base_filters: int = 8,
                   depth: int = 2) -> MGDiffNet:
    return MGDiffNet(ndim=2, base_filters=base_filters, depth=depth, rng=rng)


def small_model_3d(rng: int = 42, base_filters: int = 8,
                   depth: int = 2) -> MGDiffNet:
    return MGDiffNet(ndim=3, base_filters=base_filters, depth=depth, rng=rng)


def bench_config(max_epochs: int = 30, restriction_epochs: int = 3,
                 batch_size: int = 8, lr: float = 3e-3) -> MGTrainConfig:
    """Downscaled training budget shared by the table benchmarks."""
    return MGTrainConfig(batch_size=batch_size, lr=lr,
                         restriction_epochs=restriction_epochs,
                         max_epochs_per_level=max_epochs,
                         patience=8, min_delta=5e-4)
