"""SEC43 — inference time vs one traditional FEM solve (paper Sec. 4.3).

Paper: at 128^3, FEM takes ~5 minutes while MGDiffNet inference takes
< 30 seconds (>10x), and the network amortizes across the whole parameter
family.  Shape check at downscaled sizes: one forward pass beats one FEM
solve, with the gap growing with resolution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D, PoissonProblem3D
from repro.core import time_inference_vs_fem

try:
    from .common import bench_cli, report, small_model_2d, small_model_3d
except ImportError:
    from common import bench_cli, report, small_model_2d, small_model_3d

OMEGA = np.array([0.3105, 1.5386, 0.0932, -1.2442])
HEADER = ["case", "resolution", "inference_ms", "fem_ms", "speedup"]


def _run():
    rows = []
    for res in (32, 64):
        problem = PoissonProblem2D(resolution=res)
        model = small_model_2d()
        t = time_inference_vs_fem(model, problem, OMEGA, repeats=2)
        rows.append([f"2D", res, round(t.inference_seconds * 1e3, 1),
                     round(t.fem_seconds * 1e3, 1), round(t.speedup, 1)])
    problem = PoissonProblem3D(resolution=16)
    model = small_model_3d()
    t = time_inference_vs_fem(model, problem, OMEGA, repeats=2)
    rows.append(["3D", 16, round(t.inference_seconds * 1e3, 1),
                 round(t.fem_seconds * 1e3, 1), round(t.speedup, 1)])
    return rows


def test_sec43_inference_vs_fem(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("sec43_inference_vs_fem", HEADER, rows)
    by_case = {(r[0], r[1]): r[4] for r in rows}
    # Inference beats the FEM solve at the largest 2D size (the paper's
    # regime; at tiny grids the sparse LU is extremely cheap).
    assert by_case[("2D", 64)] > 1.0
    # And the advantage grows with resolution.
    assert by_case[("2D", 64)] > by_case[("2D", 32)] * 0.8


if __name__ == "__main__":
    bench_cli("bench_sec43_inference_vs_fem")
    report("sec43_inference_vs_fem", HEADER, _run())
