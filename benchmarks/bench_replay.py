"""TRACE REPLAY — scripted failure weather + hedged-read tail insurance.

Two experiments on a live fleet, gated for CI:

* **Storm replay** — the committed ``scenarios/storm.json`` (zipfian
  popularity, lognormal arrivals under a diurnal envelope, two-tenant
  priority mix) is replayed against a 3-shard fleet with the full
  resilience stack installed while the scripted faults land: shard 1
  flaps twice, shard 2 is killed for 2.5 s, shard 0 hangs for 2 s.
  Measured: the outcome census, resilience counters and wall time.
* **Hedged reads** — one replica of a 2-way replicated key is 10x
  slower (hot host); every read funnels through it primary-only.  With
  :class:`~repro.serve.resilience.HedgePolicy` installed, a backup
  request fires on the cold replica after the tracked latency quantile
  and the first answer wins.  Measured: request p99 with and without
  hedging over the same read storm.

Gates (exit nonzero on failure):

* **determinism** — rebuilding the storm trace from the scenario
  yields a byte-identical event log, always;
* **conservation** — ``FleetStats.lost == 0`` in every mode, always;
* **retry budget** — retries granted during the storm never exceed
  ``budget_burst + budget_rate * wall``, always;
* **hedge p99** — on hosts with >= 4 CPUs, hedged p99 must beat
  unhedged p99 outright under the 10:1 replica skew.  Hosts without
  the cores record the skip reason in the JSON instead (on a 1-core
  container the backup request just queues behind the primary).

``--json BENCH_replay.json`` is uploaded by CI's replay-smoke job and
appended to ``benchmarks/results/trajectory.jsonl``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro import MGDiffNet, PoissonProblem2D
from repro.data.sobol import sample_omega
from repro.serve import (
    BreakerConfig, FleetConfig, HedgeConfig, ReplayHarness, ResilienceConfig,
    RetryConfig, ServerConfig, ShardedFleet, build_trace, event_log,
    install_resilience, load_scenario,
)
from repro.serve.executor import default_workers

try:
    from .common import bench_cli, report, write_bench_json
except ImportError:  # pragma: no cover - script mode
    from common import bench_cli, report, write_bench_json

RESOLUTION = 16
BASE_FILTERS = 4
DEPTH = 1
SEED = 20260808
OMEGA_DIM = 4
MIN_CPUS = 4          # below this the hedge gate records a skip
SCENARIO = Path(__file__).resolve().parent / "scenarios" / "storm.json"

# Storm replay: 8 s of scenario time crushed 4x by default.
TIME_SCALE = 0.25

# Hedge experiment: service times 10:1 (hot primary vs cold replica).
N_READS = 60
HOT_DELAY_S = 0.020
COLD_DELAY_S = 0.002
HEDGE_MAX_DELAY_S = 0.008


def _storm_fleet(time_scale: float) -> ShardedFleet:
    problem = PoissonProblem2D(RESOLUTION)
    model = MGDiffNet(ndim=2, base_filters=BASE_FILTERS, depth=DEPTH,
                      rng=42)
    fleet = ShardedFleet(FleetConfig(
        shards=3, replicas=2,
        # Half the scripted 2 s hang (in replay time): the hung shard is
        # ejected mid-fault rather than stalling its queue to the end.
        shard_timeout_s=1.0 * time_scale,
        server=ServerConfig(max_batch=8, max_wait_ms=0.5, workers=1,
                            cache_bytes=0)))
    for name in ("m0", "m1", "m2"):
        fleet.register_model(name, model, problem)
    return fleet


def _run_storm(scenario_path: Path, time_scale: float) -> dict:
    """Replay the committed storm with the full resilience stack on."""
    scenario = load_scenario(scenario_path)
    fleet = _storm_fleet(time_scale)
    install_resilience(fleet, ResilienceConfig(
        retry=RetryConfig(max_attempts=4, budget_rate=4.0,
                          budget_burst=12.0, seed=SEED),
        hedge=HedgeConfig(quantile=95.0, max_delay_s=0.05),
        breaker=BreakerConfig(failure_threshold=3, reset_after_s=0.5)))
    with fleet:
        harness = ReplayHarness(fleet, scenario, time_scale=time_scale,
                                omega_dim=OMEGA_DIM)
        rep = harness.run()
    # Same (scenario, seed) expanded again must render byte-identically.
    replayed = event_log(build_trace(scenario, omega_dim=OMEGA_DIM))
    s = rep.stats
    policy = fleet.retry
    return {"scenario": rep.scenario, "seed": rep.seed,
            "time_scale": time_scale, "events": rep.events,
            "requests": rep.requests, "outcomes": rep.outcomes,
            "wall_s": rep.wall_s, "served": rep.served,
            "retried": s.retried, "hedges": s.hedges,
            "hedged_wins": s.hedged_wins, "breaker_open": s.breaker_open,
            "failovers": s.failovers, "lost": s.lost,
            "retries_granted": policy.retries,
            "retry_ceiling": policy.budget_ceiling(rep.wall_s),
            "deterministic": replayed == rep.log}


def _slow(server, delay_s: float) -> None:
    forward = server._forward

    def delayed(entry, omegas, resolution):
        time.sleep(delay_s)
        return forward(entry, omegas, resolution)

    server._forward = delayed


def _measure_hedge(hedged: bool, n_reads: int) -> dict:
    """Sequential reads against a hot primary, with/without hedging."""
    problem = PoissonProblem2D(RESOLUTION)
    model = MGDiffNet(ndim=2, base_filters=BASE_FILTERS, depth=DEPTH,
                      rng=42)
    fleet = ShardedFleet(FleetConfig(
        shards=2, replicas=2,
        server=ServerConfig(max_batch=8, max_wait_ms=0.5, workers=1,
                            cache_bytes=0)))
    fleet.register_model("m", model, problem)
    primary_id, replica_id = fleet.replicas_for("m")
    by_id = {s.id: s for s in fleet.shards}
    _slow(by_id[primary_id].server, HOT_DELAY_S)
    _slow(by_id[replica_id].server, COLD_DELAY_S)
    if hedged:
        install_resilience(fleet, ResilienceConfig(hedge=HedgeConfig(
            quantile=90.0, min_delay_s=0.001,
            max_delay_s=HEDGE_MAX_DELAY_S, warmup=8, window=128)))
    omegas = sample_omega(n_reads, OMEGA_DIM)
    with fleet:
        fleet.predict("m", omegas[0], timeout=60)      # warm both paths
        t0 = time.perf_counter()
        for w in omegas:
            fleet.predict("m", w, timeout=60)
        wall = time.perf_counter() - t0
    s = fleet.stats
    return {"mode": "hedged" if hedged else "unhedged",
            "wall_s": wall, "qps": n_reads / wall,
            "p50_ms": s.p50 * 1e3, "p99_ms": s.p99 * 1e3,
            "hedges": s.hedges, "wins": s.hedged_wins,
            "cancelled": s.hedge_cancels, "lost": s.lost}


def _run(scenario_path: Path = SCENARIO, time_scale: float = TIME_SCALE,
         n_reads: int = N_READS) -> dict:
    storm = _run_storm(scenario_path, time_scale)
    hedge = {"unhedged": _measure_hedge(hedged=False, n_reads=n_reads),
             "hedged": _measure_hedge(hedged=True, n_reads=n_reads)}
    return {"resolution": RESOLUTION, "base_filters": BASE_FILTERS,
            "depth": DEPTH, "n_reads": n_reads,
            "hot_delay_s": HOT_DELAY_S, "cold_delay_s": COLD_DELAY_S,
            "cpus": default_workers(), "storm": storm, "hedge": hedge}


def _report(result: dict) -> None:
    st = result["storm"]
    report("replay: scripted storm",
           ["scenario", "requests", "served", "retried", "failovers",
            "breaker_open", "lost", "wall_s"],
           [[st["scenario"], st["requests"], st["served"], st["retried"],
             st["failovers"], st["breaker_open"], st["lost"],
             round(st["wall_s"], 2)]])
    report("replay: hedged reads under 10:1 replica skew",
           ["mode", "qps", "p50_ms", "p99_ms", "hedges", "wins"],
           [[r["mode"], round(r["qps"], 1), round(r["p50_ms"], 2),
             round(r["p99_ms"], 2), r["hedges"], r["wins"]]
            for r in (result["hedge"]["unhedged"],
                      result["hedge"]["hedged"])])


def _gate(result: dict) -> int:
    """Determinism, conservation and the budget cap always; the hedge
    p99 comparison when cores allow."""
    status = 0
    st = result["storm"]
    if not st["deterministic"]:
        print("FAIL: same (scenario, seed) did not replay to a "
              "byte-identical event log")
        status = 1
    if st["requests"] == 0:
        print("FAIL: the storm produced no requests")
        status = 1
    if st["lost"] != 0:
        print(f"FAIL: storm fleet lost {st['lost']} requests "
              f"(conservation violated under scripted faults)")
        status = 1
    if st["retries_granted"] > st["retry_ceiling"]:
        print(f"FAIL: {st['retries_granted']} retries granted exceed "
              f"the budget ceiling {st['retry_ceiling']:.1f} over "
              f"{st['wall_s']:.1f} s")
        status = 1
    if status == 0:
        print(f"storm gates ok: {st['requests']} requests, "
              f"{st['served']} served, lost=0, "
              f"{st['retries_granted']} retries <= "
              f"ceiling {st['retry_ceiling']:.1f}, log deterministic")

    plain, hedged = result["hedge"]["unhedged"], result["hedge"]["hedged"]
    for row in (plain, hedged):
        if row["lost"] != 0:
            print(f"FAIL: {row['mode']} fleet lost {row['lost']} "
                  f"requests (conservation violated)")
            status = 1
    cpus = result["cpus"]
    if cpus >= MIN_CPUS:
        result["hedge_gate"] = "enforced"
        if hedged["p99_ms"] >= plain["p99_ms"]:
            print(f"FAIL: hedged p99 {hedged['p99_ms']:.2f} ms does not "
                  f"beat unhedged p99 {plain['p99_ms']:.2f} ms under "
                  f"10:1 replica skew")
            status = 1
        else:
            print(f"hedge gate ok: hedged p99 {hedged['p99_ms']:.2f} ms "
                  f"< unhedged {plain['p99_ms']:.2f} ms "
                  f"({hedged['wins']} wins / {hedged['hedges']} hedges)")
    else:
        result["hedge_gate"] = (
            f"skipped: host has {cpus} CPU(s) < {MIN_CPUS}")
        print(f"hedge gate skipped ({cpus} CPU(s) available); measured "
              f"hedged p99 {hedged['p99_ms']:.2f} ms vs unhedged "
              f"{plain['p99_ms']:.2f} ms")
    return status


def test_replay_bench(benchmark):
    # Downscaled for wall time: the shape under test is conservation,
    # determinism and the retry-budget cap; the hedge p99 comparison is
    # gated at full size in __main__ (CI replay-smoke job).
    result = benchmark.pedantic(
        lambda: _run(time_scale=0.25, n_reads=16),
        rounds=1, iterations=1)
    _report(result)
    st = result["storm"]
    assert st["deterministic"]
    assert st["requests"] > 0
    assert st["lost"] == 0
    assert st["retries_granted"] <= st["retry_ceiling"]
    for mode in ("unhedged", "hedged"):
        assert result["hedge"][mode]["lost"] == 0
    assert result["hedge"]["hedged"]["hedges"] > 0


if __name__ == "__main__":
    def extra(p):
        p.add_argument("--scenario", default=str(SCENARIO), metavar="PATH",
                       help="scenario JSON to replay")
        p.add_argument("--time-scale", type=float, default=TIME_SCALE,
                       help="timestamp multiplier (0.25 = 4x speed)")
        p.add_argument("--reads", type=int, default=N_READS)
        p.add_argument("--json", default=None, metavar="PATH",
                       help="also write a JSON artifact (used by CI)")

    args = bench_cli("bench_replay", extra_args=extra)
    result = _run(Path(args.scenario), args.time_scale, args.reads)
    _report(result)
    status = _gate(result)
    if args.json:
        write_bench_json(args.json, "replay", result,
                         gate="pass" if status == 0 else "fail")
        print(f"wrote {args.json}")
    sys.exit(status)
