"""EQ15 — worker-count independence of data-parallel training (paper
Sec. 3.2, Eq. 15).

'Modulo rounding errors during gradient communication, the above scheme
guarantees that the solution will be independent of the number of
workers.'  We train the same problem with p = 1, 2, 4 simulated workers
and measure the parameter drift, plus the ring all-reduce traffic volume
against its theoretical 2 (p-1)/p N bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D
from repro.distributed import DataParallelTrainer, DPConfig, ring_allreduce

try:
    from .common import bench_cli, report
except ImportError:
    from common import bench_cli, report


def _factory():
    return MGDiffNet(ndim=2, base_filters=8, depth=2, use_batchnorm=False,
                     rng=77)


def _run():
    problem = PoissonProblem2D(resolution=16)
    dataset = problem.make_dataset(16)
    states, losses = {}, {}
    for p in (1, 2, 4):
        t = DataParallelTrainer(_factory, problem, dataset,
                                DPConfig(world_size=p, batch_size=8,
                                         lr=1e-3))
        r = t.train_epochs(16, 3)
        states[p] = t.model.state_dict()
        losses[p] = r.losses
    rows = []
    for p in (2, 4):
        drift = max(float(np.abs(states[1][k] - states[p][k]).max())
                    for k in states[1])
        loss_gap = max(abs(a - b) / abs(a)
                       for a, b in zip(losses[1], losses[p]))
        rows.append([p, f"{drift:.2e}", f"{loss_gap:.2e}"])
    return rows


def test_eq15_worker_invariance(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("eq15_invariance", ["world_size", "max_param_drift",
                               "max_rel_loss_gap"], rows)
    for row in rows:
        assert float(row[1]) < 1e-4   # float32 rounding scale only
        assert float(row[2]) < 1e-4


def test_eq15_ring_traffic(benchmark):
    """Traffic per rank tracks the bandwidth-optimal 2 (p-1)/p N."""
    nw = _factory().num_weights

    def run():
        rows = []
        for p in (2, 4, 8, 16):
            bufs = [np.zeros(nw) for _ in range(p)]
            _, stats = ring_allreduce(bufs)
            ratio = stats.bytes_sent_per_rank / stats.theoretical_bytes_per_rank
            rows.append([p, stats.bytes_sent_per_rank,
                         round(stats.theoretical_bytes_per_rank),
                         round(ratio, 4)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("eq15_ring_traffic",
           ["world_size", "bytes_per_rank", "theoretical", "ratio"], rows)
    for row in rows:
        assert 0.95 < row[3] < 1.05


if __name__ == "__main__":
    bench_cli("bench_eq15_invariance")
    report("eq15_invariance",
           ["world_size", "max_param_drift", "max_rel_loss_gap"], _run())
