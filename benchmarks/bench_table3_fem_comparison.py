"""TAB3457 — MGDiffNet vs FEM fields (paper Tables 3, 4, 5, 7).

The paper shows visual comparisons at the paper's exact omega values; we
report quantitative error metrics.  Table 3 additionally compares the
four multigrid strategies on the same omega — reproduced here by training
one model per strategy and ranking their errors.

Shape checks: trained models track the FEM reference (relative L2 below a
loose threshold at this tiny budget) and the strategy comparison yields
finite, comparable errors for all four cycles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MultigridTrainer, PoissonProblem2D
from repro.core import compare_fields
from repro.multigrid import STRATEGIES

try:
    from .common import bench_cli, bench_config, report, small_model_2d
except ImportError:
    from common import bench_cli, bench_config, report, small_model_2d

PAPER_OMEGAS = {
    "table3_5_7a": (0.3105, 1.5386, 0.0932, -1.2442),
    "table4a": (0.6681, 1.5354, 0.7644, -2.9709),
    "table4b": (1.3821, 2.5508, 0.1750, 2.1269),
    "table7b": (0.2838, -2.3550, 2.9574, -1.8963),
    "table7c": (0.0293, -2.0943, 0.1386, -2.3271),
}

RESOLUTION = 32


def _train(strategy: str):
    problem = PoissonProblem2D(resolution=RESOLUTION)
    dataset = problem.make_dataset(16)
    config = bench_config(max_epochs=40)
    model = small_model_2d()
    # 3 levels so the V/W/F schedules genuinely differ (with 2 levels
    # they all collapse to [1, 2, 1]).
    MultigridTrainer(model, problem, dataset, strategy=strategy, levels=3,
                     config=config).train()
    return model, problem


def _run_tables_457():
    model, problem = _train("half_v")
    rows = []
    for name, omega in PAPER_OMEGAS.items():
        omega = np.asarray(omega)
        e = compare_fields(model.predict(problem, omega),
                           problem.fem_solve(omega))
        rows.append([name, round(e.rel_l2, 4), round(e.linf, 4),
                     round(e.mae, 4)])
    return rows


def _run_table3_strategies():
    omega = np.asarray(PAPER_OMEGAS["table3_5_7a"])
    rows = []
    for strategy in STRATEGIES:
        model, problem = _train(strategy)
        e = compare_fields(model.predict(problem, omega),
                           problem.fem_solve(omega))
        rows.append([strategy, round(e.rel_l2, 4), round(e.linf, 4),
                     round(e.mae, 4)])
    return rows


def test_tables_4_5_7_fem_agreement(benchmark):
    rows = benchmark.pedantic(_run_tables_457, rounds=1, iterations=1)
    report("table457_fem_comparison", ["case", "rel_l2", "linf", "mae"], rows)
    for row in rows:
        assert np.isfinite(row[1])
        # Loose at this micro training budget; the paper's fields agree to
        # a few percent after full training.
        assert row[1] < 0.5, f"{row[0]} diverged from FEM"
    # In-distribution omegas should mostly be well below the cap.
    assert float(np.median([r[1] for r in rows])) < 0.3


def test_table3_strategy_comparison(benchmark):
    rows = benchmark.pedantic(_run_table3_strategies, rounds=1, iterations=1)
    report("table3_strategy_errors", ["strategy", "rel_l2", "linf", "mae"],
           rows)
    errs = {row[0]: row[1] for row in rows}
    assert set(errs) == set(STRATEGIES)
    assert all(np.isfinite(v) and v < 0.6 for v in errs.values())
    # All strategies land in the same error regime (paper: all four
    # produce visually accurate fields; Half-V best).
    assert max(errs.values()) / max(min(errs.values()), 1e-6) < 25


if __name__ == "__main__":
    bench_cli("bench_table3_fem_comparison")
    report("table457_fem_comparison", ["case", "rel_l2", "linf", "mae"],
           _run_tables_457())
    report("table3_strategy_errors", ["strategy", "rel_l2", "linf", "mae"],
           _run_table3_strategies())
