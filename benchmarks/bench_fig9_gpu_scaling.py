"""FIG9 — strong scaling of 3D training at 256^3 on the V100 cluster
(paper Fig. 9).

Protocol reproduced: 1024 diffusivity maps, local batch fixed at 2,
NDv2 nodes with 8 GPUs (Table 6), p = 1..512 workers.  Per-sample compute
is *measured* on this host at a small resolution and extrapolated to
256^3 by the voxel-proportional FLOPs model; the epoch time then comes
from the alpha-beta ring-allreduce cost model.

Paper numbers: 48 min/epoch at p=1 down to ~6 s at p=512 — a 480x
speedup, 'virtually linear'.  Shape checks: monotone speedup, >300x at
512 workers, near-perfect efficiency through p=64.
"""

from __future__ import annotations

import pytest

from repro import PoissonProblem3D
from repro.distributed import DataParallelTrainer, DPConfig
from repro.perf import (AZURE_NDV2, compute_time_at_resolution,
                        measure_sample_time, ring_allreduce_time,
                        strong_scaling_study)

try:
    from .common import bench_cli, report, small_model_3d
except ImportError:
    from common import bench_cli, report, small_model_3d

WORLD_SIZES = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
HEADER = ["gpus", "nodes", "epoch_seconds", "speedup", "efficiency"]


def _run():
    measure_res = 16
    problem = PoissonProblem3D(resolution=measure_res)
    model = small_model_3d()
    t_meas = measure_sample_time(model, problem, measure_res, batch_size=2)
    t256 = compute_time_at_resolution(t_meas, measure_res, 256, ndim=3)
    pts = strong_scaling_study(WORLD_SIZES, n_samples=1024, t_sample=t256,
                               n_params=model.num_weights, spec=AZURE_NDV2,
                               local_batch=2)
    rows = [[p.world_size, p.nodes, round(p.epoch_seconds, 2),
             round(p.speedup, 1), round(p.efficiency, 3)] for p in pts]
    return rows


def test_fig9_gpu_strong_scaling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("fig9_gpu_scaling", HEADER, rows)
    speedups = [r[3] for r in rows]
    effs = [r[4] for r in rows]
    assert all(b > a for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 300          # paper: 480x at 512 GPUs
    assert effs[WORLD_SIZES.index(64)] > 0.9
    # 64 nodes at 512 GPUs, as in the paper's bar labels.
    assert rows[-1][1] == 64


def test_fig9_paper_calibrated_compute(benchmark):
    """Same model with the paper's V100-grade compute: calibrate
    t_sample from the reported 48 min/epoch at p=1 (1024 samples, local
    batch 2 -> 512 steps), and check the endpoint: ~6 s at 512 GPUs,
    speedup in the paper's 400-512x band with the knee just appearing."""
    def run():
        from repro.core.presets import paper_unet

        t_sample = 48 * 60 / (1024 / 2) / 2   # = 2.8125 s/sample
        nw = paper_unet(ndim=3, rng=0).num_weights
        pts = strong_scaling_study(WORLD_SIZES, n_samples=1024,
                                   t_sample=t_sample, n_params=nw,
                                   spec=AZURE_NDV2, local_batch=2)
        return [[p.world_size, p.nodes, round(p.epoch_seconds, 2),
                 round(p.speedup, 1), round(p.efficiency, 3)] for p in pts]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig9_paper_calibrated", HEADER, rows)
    assert rows[0][2] == pytest.approx(48 * 60, rel=0.01)  # 48 min at p=1
    end = rows[-1]
    assert 3.0 < end[2] < 10.0          # paper: 'only 6 secs'
    assert 380 < end[3] <= 512          # paper: 480x


def test_fig9_virtual_cluster_validates_model(benchmark):
    """Cross-check the analytic model against the simulated runtime at
    small p: virtual epoch times must match the model within 20%."""
    from repro.perf import epoch_time

    problem = PoissonProblem3D(resolution=8)
    dataset = problem.make_dataset(8)

    def factory():
        return small_model_3d(base_filters=4, depth=1)

    t_sample = 0.05  # fixed virtual compute cost per sample

    def run():
        out = []
        for p in (1, 2, 4):
            trainer = DataParallelTrainer(
                factory, problem, dataset,
                DPConfig(world_size=p, batch_size=2 * p, lr=1e-3),
                comm_time_model=lambda nbytes, ws: ring_allreduce_time(
                    nbytes, ws, AZURE_NDV2),
                compute_time_per_sample=t_sample)
            r = trainer.train_epochs(8, 1)
            virtual = r.virtual_compute_seconds + r.virtual_comm_seconds
            model_t = epoch_time(p, len(trainer.dataset), t_sample,
                                 factory().num_weights, AZURE_NDV2,
                                 local_batch=2)
            out.append((p, virtual, model_t))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig9_model_validation",
           ["p", "virtual_epoch_s", "analytic_epoch_s"],
           [[p, round(v, 4), round(m, 4)] for p, v, m in results])
    for p, virtual, model_t in results:
        assert virtual == pytest.approx(model_t, rel=0.2)


if __name__ == "__main__":
    bench_cli("bench_fig9_gpu_scaling")
    report("fig9_gpu_scaling", HEADER, _run())
