"""FIG10 — strong scaling of 3D training at 512^3 on the Bridges2 EPYC
cluster (paper Fig. 10).

Protocol reproduced: 512^3 diffusivity maps (beyond GPU memory, hence CPU
nodes), one MPI process per 128-core node, local batch 2, HDR InfiniBand
200 Gb/s (Table 6), up to 128 nodes.  Shape checks: 'once again,
scalability is very strong, up to 128 nodes'.
"""

from __future__ import annotations

import pytest

from repro import PoissonProblem3D
from repro.perf import (BRIDGES2_CPU, compute_time_at_resolution,
                        measure_sample_time, strong_scaling_study)

try:
    from .common import bench_cli, report, small_model_3d
except ImportError:
    from common import bench_cli, report, small_model_3d

WORLD_SIZES = [1, 2, 4, 8, 16, 32, 64, 128]
HEADER = ["nodes", "epoch_seconds", "speedup", "efficiency"]

#: CPU nodes run the conv workload slower than a V100; factor from typical
#: V100-vs-EPYC throughput on dense conv workloads.
CPU_SLOWDOWN = 8.0


def _run():
    measure_res = 16
    problem = PoissonProblem3D(resolution=measure_res)
    model = small_model_3d()
    t_meas = measure_sample_time(model, problem, measure_res, batch_size=2)
    t512 = compute_time_at_resolution(t_meas, measure_res, 512,
                                      ndim=3) * CPU_SLOWDOWN
    pts = strong_scaling_study(WORLD_SIZES, n_samples=1024, t_sample=t512,
                               n_params=model.num_weights, spec=BRIDGES2_CPU,
                               local_batch=2)
    return [[p.world_size, round(p.epoch_seconds, 2), round(p.speedup, 1),
             round(p.efficiency, 3)] for p in pts]


def test_fig10_cpu_strong_scaling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("fig10_cpu_scaling", HEADER, rows)
    speedups = [r[2] for r in rows]
    effs = [r[3] for r in rows]
    assert all(b > a for a, b in zip(speedups, speedups[1:]))
    # 'scalability is very strong, up to 128 nodes'.
    assert speedups[-1] > 100
    assert all(e > 0.85 for e in effs)


def test_fig10_memory_argument(benchmark):
    """The paper's memory arithmetic is internally consistent, and it is
    why Fig. 10 runs on CPU nodes: a sample costs ~14 GB at 256^3
    (Sec. 4.2.1); activation memory scales with voxel count, so at 512^3
    one sample needs ~112 GB — far beyond a 32 GB V100 — and the local
    batch of 2 lands at ~224 GB, matching the paper's reported 230 GB
    peak per 256 GB Bridges2 node."""
    def run():
        gb_per_sample_256 = 14.0           # paper measurement
        voxel_ratio = (512 / 256) ** 3
        gb_per_sample_512 = gb_per_sample_256 * voxel_ratio
        local_batch_gb = 2 * gb_per_sample_512
        return gb_per_sample_512, local_batch_gb

    per_sample, batch = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig10_memory_estimate",
           ["gb_per_sample_512^3", "gb_local_batch_2", "paper_peak_gb",
            "node_ram_gb", "v100_gb"],
           [[per_sample, batch, 230, 256, 32]])
    assert per_sample > 32          # cannot fit a single sample on a V100
    assert batch == pytest.approx(230, rel=0.1)  # paper's measured peak
    assert batch < 256              # fits the Bridges2 node RAM


if __name__ == "__main__":
    bench_cli("bench_fig10_cpu_scaling")
    report("fig10_cpu_scaling", HEADER, _run())
