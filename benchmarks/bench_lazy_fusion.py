"""Lazy backend fusion vs eager NumPy: the temporaries tax, measured.

Eager NumPy executes ``x + omega * inv_d * r * interior`` as four
full-size temporaries streamed through memory; the lazy backend fuses
the chain into one kernel (JIT-compiled C when a compiler exists, a
single interpreted pass otherwise).  This bench times the damped-Jacobi
update — the GMG smoother's hot chain — and a fused reduction at
megavoxel-adjacent sizes and gates:

* **jit**: fused C kernels must be >= 1.3x eager (gated only when a C
  compiler is detected; otherwise the JSON records the skip reason);
* **interpreter**: the no-compiler fallback must never be worse than
  1.2x slower than eager — laziness has to pay for itself or get out
  of the way.

``--json BENCH_lazy_fusion.json`` is uploaded by CI's lazy-smoke job.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

try:
    from .common import bench_cli, report, write_bench_json
except ImportError:  # pragma: no cover - script mode
    from common import bench_cli, report, write_bench_json

SIZE = 1 << 21          # 16 MiB float64 operands: well past cache
SWEEPS = 8              # chain executions per timed round
REPEATS = 5             # best-of
JIT_SPEEDUP_GATE = 1.3
INTERP_SLOWDOWN_GATE = 1.2


def _operands(size: int):
    rng = np.random.default_rng(0)
    return (rng.standard_normal(size),                       # x
            rng.standard_normal(size),                       # r
            rng.uniform(1.0, 2.0, size),                     # diag
            (np.arange(size) % 5 != 0).astype(np.float64))   # interior


def _eager_smoother(x, r, diag, interior, sweeps):
    omega = 2.0 / 3.0
    for _ in range(sweeps):
        inv_d = np.where(diag != 0, 1.0 / diag, 0.0)
        x = x + omega * inv_d * r * interior
    return x


def _lazy_smoother(x, r, diag, interior, sweeps):
    from repro.backend import ops as B, realize

    omega = 2.0 / 3.0
    x = B.asarray(x)
    r, diag = B.asarray(r), B.asarray(diag)
    interior = B.asarray(interior)
    for _ in range(sweeps):
        inv_d = B.where(diag != 0, 1.0 / diag, 0.0)
        # realize per sweep: one fused kernel per iteration, matching
        # the eager path's per-sweep materialization.
        x = realize(x + omega * inv_d * r * interior)
    return np.asarray(x)


def _eager_reduce(x, r, sweeps):
    total = 0.0
    for _ in range(sweeps):
        total += float(np.exp(-np.abs(x * r)).sum())
    return total


def _lazy_reduce(x, r, sweeps):
    from repro.backend import ops as B

    xl, rl = B.asarray(x), B.asarray(r)
    total = 0.0
    for _ in range(sweeps):
        total += float(B.exp(-B.abs(xl * rl)).sum())
    return total


def _lazy_mode(workload, jit: bool):
    """Run ``workload`` under the lazy backend with/without the JIT."""
    from repro.backend import use_backend

    prev = os.environ.pop("REPRO_JIT_DISABLE", None)
    if not jit:
        os.environ["REPRO_JIT_DISABLE"] = "1"
    try:
        with use_backend("lazy"):
            return workload()
    finally:
        os.environ.pop("REPRO_JIT_DISABLE", None)
        if prev is not None:
            os.environ["REPRO_JIT_DISABLE"] = prev


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _time_modes(modes: dict, repeats: int = REPEATS) -> dict[str, float]:
    """Best-of-N per mode with the modes *interleaved* round-robin.

    Shared CI boxes drift: timing mode A's rounds back-to-back and then
    mode B's measures the machine as much as the code.  Interleaving
    puts every mode through the same weather; best-of still rejects the
    stragglers.
    """
    best = {name: float("inf") for name in modes}
    for _ in range(repeats):
        for name, fn in modes.items():
            best[name] = min(best[name], _timed(fn))
    return best


def _run(size: int = SIZE, sweeps: int = SWEEPS) -> dict:
    from repro.backend import lazy_stats, reset_lazy_stats
    from repro.backend.lazy import jit_enabled

    x, r, diag, interior = _operands(size)
    workloads = {
        "smoother": (lambda: _eager_smoother(x, r, diag, interior, sweeps),
                     lambda: _lazy_smoother(x, r, diag, interior, sweeps)),
        "reduce": (lambda: _eager_reduce(x, r, sweeps),
                   lambda: _lazy_reduce(x, r, sweeps)),
    }
    result: dict = {"size": size, "sweeps": sweeps,
                    "jit_available": jit_enabled(), "rows": []}
    for name, (eager_fn, lazy_fn) in workloads.items():
        # Equivalence first: the speed is worthless if the answer moved.
        eager_val = np.asarray(eager_fn())
        np.testing.assert_allclose(
            np.asarray(_lazy_mode(lazy_fn, jit=False)), eager_val,
            atol=1e-9, rtol=1e-9)
        modes = {"eager": eager_fn,
                 "interp": lambda: _lazy_mode(lazy_fn, jit=False)}
        if jit_enabled():
            np.testing.assert_allclose(
                np.asarray(_lazy_mode(lazy_fn, jit=True)), eager_val,
                atol=1e-9, rtol=1e-9)     # also warms the kernel cache
            modes["jit"] = lambda: _lazy_mode(lazy_fn, jit=True)
        reset_lazy_stats()
        best = _time_modes(modes)
        stats = lazy_stats()
        row = {"workload": name, "eager_s": best["eager"],
               "interp_s": best["interp"],
               "interp_ratio": best["interp"] / best["eager"],
               "fused_ops": stats["fused_ops"],
               "clusters": stats["clusters"]}
        if "jit" in best:
            row["jit_s"] = best["jit"]
            row["jit_speedup"] = best["eager"] / best["jit"]
            row["jit_runs"] = stats["jit_runs"]
        result["rows"].append(row)
    return result


def _report(result: dict) -> None:
    rows = []
    for row in result["rows"]:
        rows.append([row["workload"], f"{row['eager_s'] * 1e3:.1f}",
                     f"{row.get('jit_s', float('nan')) * 1e3:.1f}"
                     if "jit_s" in row else "-",
                     f"{row.get('jit_speedup', 0):.2f}x"
                     if "jit_speedup" in row else "-",
                     f"{row['interp_s'] * 1e3:.1f}",
                     f"{row['interp_ratio']:.2f}x",
                     row["clusters"], row["fused_ops"]])
    report("lazy_fusion",
           ["workload", "eager_ms", "jit_ms", "jit_speedup",
            "interp_ms", "interp_vs_eager", "clusters", "fused_ops"], rows)


def _gate(result: dict) -> tuple[int, str]:
    """Exit status and the gate string recorded in the JSON artifact."""
    status = 0
    for row in result["rows"]:
        if row["interp_ratio"] > INTERP_SLOWDOWN_GATE:
            print(f"FAIL: {row['workload']} interpreter "
                  f"{row['interp_ratio']:.2f}x slower than eager "
                  f"(> {INTERP_SLOWDOWN_GATE}x)")
            status = 1
    if not result["jit_available"]:
        reason = "skip:no C compiler detected"
        print("jit speedup gate skipped: no C compiler on host")
        return status, reason if status == 0 else "fail"
    best = max(row.get("jit_speedup", 0.0) for row in result["rows"])
    if best < JIT_SPEEDUP_GATE:
        print(f"FAIL: best fused-JIT speedup {best:.2f}x < "
              f"{JIT_SPEEDUP_GATE}x over eager")
        status = 1
    else:
        print(f"jit gate ok: best fused speedup {best:.2f}x "
              f">= {JIT_SPEEDUP_GATE}x")
    return status, "pass" if status == 0 else "fail"


if __name__ == "__main__":
    def extra(p):
        p.add_argument("--size", type=int, default=SIZE)
        p.add_argument("--sweeps", type=int, default=SWEEPS)
        p.add_argument("--json", default=None, metavar="PATH",
                       help="also write a JSON artifact (used by CI)")

    args = bench_cli("bench_lazy_fusion", extra_args=extra)
    result = _run(args.size, args.sweeps)
    _report(result)
    status, gate = _gate(result)
    if args.json:
        write_bench_json(args.json, "lazy_fusion", result, gate=gate)
        print(f"wrote {args.json}")
    sys.exit(status)
