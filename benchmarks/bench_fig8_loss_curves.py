"""FIG8 — loss-vs-time curves, base vs multigrid 3D training (paper
Fig. 8).

The paper's figure shows the Half-V multigrid loss dropping fast during
the cheap coarse-level phases and finishing at a loss comparable to the
full-resolution baseline.  We regenerate both curves (as CSV series) and
check the shape: the multigrid run reaches the baseline's final loss
earlier than the baseline does.
"""

from __future__ import annotations

import pytest

from repro import MultigridTrainer, PoissonProblem3D

try:
    from .common import bench_cli, bench_config, report, small_model_3d
except ImportError:
    from common import bench_cli, bench_config, report, small_model_3d


def _run(resolution: int = 16):
    problem = PoissonProblem3D(resolution=resolution)
    dataset = problem.make_dataset(4)
    config = bench_config(max_epochs=15, restriction_epochs=2, batch_size=4)

    base_tr = MultigridTrainer(small_model_3d(depth=2), problem, dataset,
                               strategy="half_v", levels=2, config=config)
    base = base_tr.train_baseline()
    base_curve = []
    t = 0.0
    for dt, loss in zip(base.epoch_times, base.losses):
        t += dt
        base_curve.append((t, loss))

    mg_tr = MultigridTrainer(small_model_3d(depth=2), problem, dataset,
                             strategy="half_v", levels=2, config=config)
    mg = mg_tr.train()
    mg_curve = [(t, loss) for _, t, loss in mg.loss_history()]
    mg_levels = [lvl for lvl, _, _ in mg.loss_history()]
    return base_curve, mg_curve, mg_levels


def test_fig8_loss_curves(benchmark):
    base_curve, mg_curve, mg_levels = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    rows = ([["base", round(t, 3), round(l, 5)] for t, l in base_curve]
            + [[f"half_v_L{lvl}", round(t, 3), round(l, 5)]
               for (t, l), lvl in zip(mg_curve, mg_levels)])
    report("fig8_loss_curves", ["series", "time_s", "loss"], rows)

    base_final = base_curve[-1][1]
    base_total = base_curve[-1][0]
    # Shape: multigrid touches the baseline's final loss earlier.
    reach = [t for t, l in mg_curve if l <= base_final * 1.1]
    assert reach, "multigrid never approached baseline loss"
    assert reach[0] <= base_total * 1.2
    # And coarse-level epochs are cheaper than fine-level epochs.
    coarse_dt = mg_curve[0][0]
    fine_dts = [b - a for (a, _), (b, _), lvl in
                zip(mg_curve, mg_curve[1:], mg_levels[1:]) if lvl == 1]
    assert fine_dts and min(fine_dts) > coarse_dt * 0.8


if __name__ == "__main__":
    bench_cli("bench_fig8_loss_curves")
    base_curve, mg_curve, mg_levels = _run()
    rows = ([["base", round(t, 3), round(l, 5)] for t, l in base_curve]
            + [[f"half_v_L{lvl}", round(t, 3), round(l, 5)]
               for (t, l), lvl in zip(mg_curve, mg_levels)])
    report("fig8_loss_curves", ["series", "time_s", "loss"], rows)
