"""STREAMING TILED INFERENCE — first-byte latency vs full-field wall.

Two experiments, gated for CI:

* **First-byte latency (64^3)** — one ω predicted on a 64^3 grid both
  ways: :func:`~repro.serve.tiled_predict` (the full stitched field in
  one return) and :func:`~repro.serve.stream_tiled_predict` (tile cores
  yielded as the pool completes them).  Measured: wall time of the full
  field, time to the *first* streamed record, time to the last, and the
  max |Δ| between the progressively assembled field and the one-shot
  result.  The streaming win is the first-byte gap: a renderer or outer
  solver loop starts consuming while 7/8 of the volume is still
  computing.
* **Mid-stream shard kill** — a 2-shard fleet streams the same tiled
  prediction while the serving replica dies after delivering one tile
  (its per-tile generator raises ``OSError``).  The fleet must eject,
  fail over, and resume the stream on the replica restricted to the
  undelivered tile set — no tile re-sent, no tile missing.  Measured:
  delivered-tile census, ``stream_resumed``/``stream_tiles_delivered``
  counters, and the conservation law.

Gates (exit nonzero on failure):

* **equality** — streamed assembly matches ``tiled_predict`` within
  1e-5 (it is bitwise-equal by construction; the gate allows backend
  drift), in both experiments, always;
* **first byte** — time-to-first-tile strictly below the full-field
  wall at 64^3, always;
* **conservation** — the kill run ends with ``lost == 0``, exactly one
  resume, and all tiles delivered exactly once, always.

``--json BENCH_streaming.json`` is uploaded by CI's streaming-smoke job
and appended to ``benchmarks/results/trajectory.jsonl``.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import MGDiffNet, PoissonProblem3D
from repro.serve import (
    FleetConfig, ServerConfig, ShardedFleet, make_executor,
    stream_tiled_predict, tiled_predict,
)
from repro.serve.executor import default_workers

try:
    from .common import bench_cli, report, write_bench_json
except ImportError:  # pragma: no cover - script mode
    from common import bench_cli, report, write_bench_json

BASE_FILTERS = 4
DEPTH = 1

# First-byte experiment: 64^3 (the ISSUE floor), 2x2x2 tiles of 32^3
# core + 8 halo.
RESOLUTION = 64
TILE = 32
HALO = 8

# Kill experiment: same tile topology at 32^3 so the fleet round stays
# CI-cheap; the mechanics under test (resume, conservation) are
# size-independent.
FLEET_RESOLUTION = 32
FLEET_TILE = 16


def _build():
    model = MGDiffNet(ndim=3, base_filters=BASE_FILTERS, depth=DEPTH,
                      rng=42)
    problem = PoissonProblem3D(16)
    omega = np.array([0.3105, 1.5386, 0.0932, -1.2442])
    return model, problem, omega


def _measure_first_byte(resolution: int, executor_kind: str) -> dict:
    """Full-field wall vs streamed first/last record on one executor."""
    model, problem, omega = _build()
    executor = make_executor(executor_kind, None)
    try:
        # Warm plans/pools so neither path pays one-time setup.
        tiled_predict(model, problem, omega, resolution=resolution,
                      tile=TILE, halo=HALO, executor=executor)
        t0 = time.perf_counter()
        full = tiled_predict(model, problem, omega, resolution=resolution,
                             tile=TILE, halo=HALO, executor=executor)
        full_s = time.perf_counter() - t0

        out = np.empty_like(full)
        first_s = None
        n_tiles = 0
        t0 = time.perf_counter()
        for _, sl, core in stream_tiled_predict(
                model, problem, omega, resolution=resolution,
                tile=TILE, halo=HALO, executor=executor):
            if first_s is None:
                first_s = time.perf_counter() - t0
            out[(slice(None),) + sl] = core
            n_tiles += 1
        stream_s = time.perf_counter() - t0
    finally:
        executor.close()
    return {"executor": executor_kind, "resolution": resolution,
            "tiles": n_tiles, "full_field_s": full_s,
            "first_tile_s": first_s, "stream_s": stream_s,
            "speedup_first_byte": full_s / first_s,
            "max_abs_diff": float(np.max(np.abs(out - full)))}


def _measure_kill() -> dict:
    """Stream through a fleet whose serving replica dies mid-stream."""
    model, problem, omega = _build()
    fleet = ShardedFleet(FleetConfig(
        shards=2, replicas=2,
        server=ServerConfig(max_batch=4, max_wait_ms=0.5, workers=1,
                            cache_bytes=0, tile=FLEET_TILE, halo=HALO)))
    fleet.register_model("m", model, problem)
    # One-shot fault shared by both replicas: whichever shard serves the
    # stream first yields one tile, then its generator raises — the
    # fleet must eject it and resume the rest on the other replica.
    armed = {"live": True}
    for shard in fleet.shards:
        server = shard.server
        inner = server._stream_tiles

        def dying(entry, w, r, tiles, tile, halo, _inner=inner):
            it = _inner(entry, w, r, tiles, tile, halo)
            for n, rec in enumerate(it):
                if armed["live"] and n == 1:
                    armed["live"] = False
                    raise OSError("replica died mid-stream (scripted)")
                yield rec

        server._stream_tiles = dying

    expected = tiled_predict(model, problem, omega,
                             resolution=FLEET_RESOLUTION,
                             tile=FLEET_TILE, halo=HALO)[0]
    out = np.empty_like(expected)
    seen: list[int] = []
    with fleet:
        for i, sl, core in fleet.stream("m", omega,
                                        resolution=FLEET_RESOLUTION):
            seen.append(i)
            out[sl] = core
    s = fleet.stats
    return {"tiles": len(seen), "unique_tiles": len(set(seen)),
            "killed": not armed["live"],
            "stream_resumed": s.stream_resumed,
            "stream_tiles_delivered": s.stream_tiles_delivered,
            "failovers": s.failovers, "streams": s.streams,
            "served": s.served, "lost": s.lost,
            "max_abs_diff": float(np.max(np.abs(out - expected)))}


def _run(resolution: int = RESOLUTION) -> dict:
    executor_kind = "thread" if default_workers() >= 2 else "serial"
    return {"base_filters": BASE_FILTERS, "depth": DEPTH,
            "tile": TILE, "halo": HALO, "cpus": default_workers(),
            "first_byte": _measure_first_byte(resolution, executor_kind),
            "kill": _measure_kill()}


def _report(result: dict) -> None:
    fb = result["first_byte"]
    report("streaming: first-byte latency",
           ["executor", "resolution", "tiles", "first_tile_ms",
            "full_field_ms", "speedup", "max_abs_diff"],
           [[fb["executor"], fb["resolution"], fb["tiles"],
             round(fb["first_tile_s"] * 1e3, 1),
             round(fb["full_field_s"] * 1e3, 1),
             f"{fb['speedup_first_byte']:.1f}x",
             f"{fb['max_abs_diff']:.1e}"]])
    k = result["kill"]
    report("streaming: mid-stream shard kill",
           ["tiles", "unique", "resumed", "delivered", "failovers",
            "lost", "max_abs_diff"],
           [[k["tiles"], k["unique_tiles"], k["stream_resumed"],
             k["stream_tiles_delivered"], k["failovers"], k["lost"],
             f"{k['max_abs_diff']:.1e}"]])


def _gate(result: dict) -> int:
    status = 0
    fb = result["first_byte"]
    if fb["max_abs_diff"] > 1e-5:
        print(f"FAIL: streamed assembly diverges from tiled_predict by "
              f"{fb['max_abs_diff']:.2e} > 1e-5")
        status = 1
    if not fb["first_tile_s"] < fb["full_field_s"]:
        print(f"FAIL: first streamed tile "
              f"({fb['first_tile_s'] * 1e3:.1f} ms) not strictly below "
              f"the full-field wall ({fb['full_field_s'] * 1e3:.1f} ms)")
        status = 1
    k = result["kill"]
    if not k["killed"]:
        print("FAIL: the scripted mid-stream kill never fired")
        status = 1
    if k["lost"] != 0:
        print(f"FAIL: kill run lost {k['lost']} requests "
              f"(conservation violated mid-stream)")
        status = 1
    if k["unique_tiles"] != k["tiles"]:
        print(f"FAIL: {k['tiles'] - k['unique_tiles']} tiles re-sent "
              f"after failover")
        status = 1
    if k["stream_resumed"] != 1:
        print(f"FAIL: expected exactly one stream resume, "
              f"got {k['stream_resumed']}")
        status = 1
    if k["max_abs_diff"] > 1e-5:
        print(f"FAIL: resumed stream diverges from tiled_predict by "
              f"{k['max_abs_diff']:.2e} > 1e-5")
        status = 1
    if status == 0:
        print(f"streaming gates ok: first byte "
              f"{fb['first_tile_s'] * 1e3:.1f} ms < full field "
              f"{fb['full_field_s'] * 1e3:.1f} ms "
              f"({fb['speedup_first_byte']:.1f}x), assembly exact, "
              f"kill run resumed once with lost=0")
    return status


def test_streaming_bench(benchmark):
    # Downscaled for wall time: the structural gates (exact assembly,
    # first byte strictly earlier, resume with lost == 0) are size
    # -independent; the 64^3 measurement runs in __main__ (CI job).
    result = benchmark.pedantic(lambda: _run(resolution=32),
                                rounds=1, iterations=1)
    _report(result)
    fb = result["first_byte"]
    assert fb["max_abs_diff"] <= 1e-5
    assert fb["first_tile_s"] < fb["full_field_s"]
    k = result["kill"]
    assert k["killed"] and k["lost"] == 0
    assert k["unique_tiles"] == k["tiles"]
    assert k["stream_resumed"] == 1
    assert k["max_abs_diff"] <= 1e-5


if __name__ == "__main__":
    def extra(p):
        p.add_argument("--resolution", type=int, default=RESOLUTION)
        p.add_argument("--json", default=None, metavar="PATH",
                       help="also write a JSON artifact (used by CI)")

    args = bench_cli("bench_streaming", extra_args=extra)
    result = _run(args.resolution)
    _report(result)
    status = _gate(result)
    if args.json:
        write_bench_json(args.json, "streaming", result,
                         gate="pass" if status == 0 else "fail")
        print(f"wrote {args.json}")
    sys.exit(status)
