"""ABLATIONS — design choices called out in DESIGN.md.

1. Quadrature order: the 2-point Gauss rule is the exactness/cost sweet
   spot for Q1 elements — 1-point underintegrates the stiffness (the loss
   no longer matches K u - b), 3-point adds cost with no accuracy.
2. Input transform: feeding log(nu) (the smooth KL-expansion sum) vs raw
   nu, which spans orders of magnitude.
3. Downsampling: stride-2 convolutions vs max pooling in the U-Net
   (Sec. 3.1.2 permits both).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import MGDiffNet, PoissonProblem2D, Trainer, TrainConfig
from repro.autograd import Tensor
from repro.fem import (EnergyLoss, FEMSolver, GaussRule, UniformGrid,
                       assemble_stiffness)

try:
    from .common import bench_cli, report
except ImportError:
    from common import bench_cli, report


def _run_quadrature():
    rng = np.random.default_rng(0)
    grid = UniformGrid(2, 9)
    nu = np.exp(0.3 * rng.standard_normal(grid.shape))
    u_np = rng.standard_normal(grid.shape)
    k2 = assemble_stiffness(grid, nu, GaussRule.create(2, 2))
    ref_grad = (k2 @ u_np.ravel()).reshape(grid.shape)

    rows = []
    for order in (1, 2, 3):
        rule = GaussRule.create(2, order)
        loss = EnergyLoss(grid, rule=rule, reduction="sum")
        u = Tensor(u_np[None, None], requires_grad=True, dtype=np.float64)
        t0 = time.perf_counter()
        for _ in range(20):
            u.zero_grad()
            loss(u, nu[None, None]).backward()
        dt = (time.perf_counter() - t0) / 20
        gap = float(np.abs(u.grad[0, 0] - ref_grad).max())
        rows.append([order, rule.n_points, round(dt * 1e3, 3),
                     f"{gap:.2e}"])
    return rows


def test_ablation_quadrature_order(benchmark):
    rows = benchmark.pedantic(_run_quadrature, rounds=1, iterations=1)
    report("ablation_quadrature",
           ["gauss_order", "points_per_element", "loss_grad_ms",
            "grad_gap_vs_2pt_operator"], rows)
    gaps = [float(r[3]) for r in rows]
    times = [r[2] for r in rows]
    assert gaps[0] > 1e-3        # 1-point underintegrates
    assert gaps[1] < 1e-10       # 2-point is the exact operator
    assert gaps[2] < 1e-9        # 3-point agrees (Q1 integrands are low order)
    assert times[2] > times[1]   # ...but costs more


def _train_with(problem, dataset, epochs=50):
    model = MGDiffNet(ndim=2, base_filters=8, depth=2, rng=6)
    trainer = Trainer(model, problem, dataset,
                      TrainConfig(batch_size=8, lr=3e-3))
    res = trainer.train_epochs(16, epochs)
    return model, res


def _run_input_transform():
    problem = PoissonProblem2D(resolution=16)
    rows = []
    for transform in ("log", "identity"):
        dataset = problem.make_dataset(8, input_transform=transform)
        _, res = _train_with(problem, dataset)
        rows.append([transform, round(res.final_loss, 5),
                     round(min(res.losses), 5)])
    return rows


def test_ablation_input_transform(benchmark):
    rows = benchmark.pedantic(_run_input_transform, rounds=1, iterations=1)
    report("ablation_input_transform",
           ["input_transform", "final_loss", "best_loss"], rows)
    by = {r[0]: r[1] for r in rows}
    # The log transform (bounded, smooth) must not be worse than feeding
    # raw nu whose dynamic range spans orders of magnitude.
    assert by["log"] <= by["identity"] * 1.2


def _run_downsample():
    problem = PoissonProblem2D(resolution=16)
    dataset = problem.make_dataset(8)
    rows = []
    for mode in ("conv", "maxpool"):
        model = MGDiffNet(ndim=2, base_filters=8, depth=2, downsample=mode,
                          rng=6)
        trainer = Trainer(model, problem, dataset,
                          TrainConfig(batch_size=8, lr=3e-3))
        res = trainer.train_epochs(16, 50)
        rows.append([mode, model.num_weights, round(res.final_loss, 5)])
    return rows


def test_ablation_downsample(benchmark):
    rows = benchmark.pedantic(_run_downsample, rounds=1, iterations=1)
    report("ablation_downsample",
           ["downsample", "params", "final_loss"], rows)
    by = {r[0]: r[2] for r in rows}
    # Both variants train; stride-2 conv has more parameters.
    params = {r[0]: r[1] for r in rows}
    assert params["conv"] > params["maxpool"]
    assert all(np.isfinite(v) for v in by.values())
    # Neither collapses: losses within one order of magnitude.
    assert max(by.values()) < 10 * min(by.values()) + 1.0


if __name__ == "__main__":
    bench_cli("bench_ablation_design")
    report("ablation_quadrature",
           ["gauss_order", "points_per_element", "loss_grad_ms",
            "grad_gap_vs_2pt_operator"], _run_quadrature())
    report("ablation_input_transform",
           ["input_transform", "final_loss", "best_loss"],
           _run_input_transform())
    report("ablation_downsample", ["downsample", "params", "final_loss"],
           _run_downsample())
