"""Benchmark trajectory: append run artifacts, compare across history.

Every benchmark in this directory can emit a ``BENCH_*.json`` artifact
(``--json``).  Those files are per-run and git-ignored; this tool folds
them into ``benchmarks/results/trajectory.jsonl`` — one line per run,
committed, so the repo carries its own performance history and CI can
flag regressions against it.

Usage::

    # After a benchmark run: fold the artifact into the trajectory.
    python trajectory.py append BENCH_control_plane.json

    # Gate: compare the newest entry against the previous one.
    python trajectory.py compare --bench control_plane \
        --metric result.skew.1.p99_ms --direction lower --tolerance 0.25

``compare`` exits 0 when there is nothing to compare (fewer than two
entries for the bench, or the metric missing from either side) and when
the latest entry's gates were skipped (e.g. recorded on a host with too
few CPUs — its numbers are real but not comparable).  It exits 1 only
on a genuine regression beyond the tolerance.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

DEFAULT_TRAJECTORY = Path(__file__).parent / "results" / "trajectory.jsonl"


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent, capture_output=True, text=True,
            timeout=10)
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def _load_entries(path: Path) -> list[dict]:
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except ValueError:
            print(f"warning: skipping malformed line in {path}",
                  file=sys.stderr)
    return entries


def _resolve(obj, dotted: str):
    """Walk ``a.b.0.c`` through nested dicts/lists; None if absent."""
    for part in dotted.split("."):
        if isinstance(obj, dict):
            if part not in obj:
                return None
            obj = obj[part]
        elif isinstance(obj, list):
            try:
                obj = obj[int(part)]
            except (ValueError, IndexError):
                return None
        else:
            return None
    return obj


def _skipped_gates(entry: dict) -> list[str]:
    """Result fields like ``skew_gate: "skipped: ..."`` in an entry."""
    result = entry.get("result", {})
    if not isinstance(result, dict):
        return []
    return [k for k, v in result.items()
            if k.endswith("_gate") and isinstance(v, str)
            and v.startswith("skipped")]


def cmd_append(args: argparse.Namespace) -> int:
    artifact = Path(args.artifact)
    try:
        payload = json.loads(artifact.read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {artifact}: {exc}", file=sys.stderr)
        return 1
    entry = {
        "recorded_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "git": _git_rev(),
        **payload,
    }
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"appended {entry.get('bench', '?')} @ {entry['git']} -> {out}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    entries = [e for e in _load_entries(Path(args.file))
               if e.get("bench") == args.bench]
    if len(entries) < 2:
        print(f"compare: {len(entries)} entr"
              f"{'y' if len(entries) == 1 else 'ies'} for "
              f"'{args.bench}' — nothing to compare")
        return 0
    prev, latest = entries[-2], entries[-1]
    skipped = _skipped_gates(latest) or _skipped_gates(prev)
    if skipped:
        print(f"compare: gates skipped on a compared run "
              f"({', '.join(sorted(set(skipped)))}) — not comparable")
        return 0
    prev_v = _resolve(prev, args.metric)
    latest_v = _resolve(latest, args.metric)
    if not isinstance(prev_v, (int, float)) \
            or not isinstance(latest_v, (int, float)):
        print(f"compare: metric '{args.metric}' missing or non-numeric "
              f"(prev={prev_v!r}, latest={latest_v!r}) — skipping")
        return 0
    if args.direction == "higher":
        floor = prev_v * (1.0 - args.tolerance)
        ok = latest_v >= floor
        verdict = (f"{args.metric}: {latest_v:.4g} vs previous "
                   f"{prev_v:.4g} (floor {floor:.4g}, higher is better)")
    else:
        ceiling = prev_v * (1.0 + args.tolerance)
        ok = latest_v <= ceiling
        verdict = (f"{args.metric}: {latest_v:.4g} vs previous "
                   f"{prev_v:.4g} (ceiling {ceiling:.4g}, "
                   f"lower is better)")
    if ok:
        print(f"compare ok: {verdict}")
        return 0
    print(f"REGRESSION: {verdict}")
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser(
        "append", help="fold a BENCH_*.json artifact into the trajectory")
    p_append.add_argument("artifact", help="path to a BENCH_*.json file")
    p_append.add_argument("--output", default=str(DEFAULT_TRAJECTORY),
                          help="trajectory file to append to")
    p_append.set_defaults(func=cmd_append)

    p_compare = sub.add_parser(
        "compare", help="compare the two newest entries of one bench")
    p_compare.add_argument("--bench", required=True,
                           help="bench name as written by the artifact")
    p_compare.add_argument("--metric", required=True,
                           help="dotted path into an entry, e.g. "
                                "result.skew.1.p99_ms")
    p_compare.add_argument("--direction", choices=("higher", "lower"),
                           required=True,
                           help="which way is better for this metric")
    p_compare.add_argument("--tolerance", type=float, default=0.25,
                           help="allowed relative slack (default 0.25)")
    p_compare.add_argument("--file", default=str(DEFAULT_TRAJECTORY),
                           help="trajectory file to read")
    p_compare.set_defaults(func=cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
