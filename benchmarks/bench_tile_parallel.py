"""TILE-PARALLEL — parallel tiled megavoxel inference vs sequential.

Tiles of the exact tiled-inference path are independent (disjoint cores,
read-only input), so they fan out over a worker pool
(:mod:`repro.serve.executor`): thread workers exploit GIL-releasing BLAS,
process workers escape the GIL entirely.  This benchmark measures the
wall-clock speedup of thread- and process-parallel ``tiled_predict``
against the sequential loop on one grid, verifies the stitched fields
match the sequential result to <= ``TOL``, and writes
``BENCH_tile_parallel.json`` for CI.

Exactness is a hard gate: any divergence beyond ``TOL`` exits nonzero.
The speedup assertion (process pool >= ``MIN_SPEEDUP`` at ``WORKERS``
workers) is enforced whenever the host exposes at least ``WORKERS`` CPUs;
on smaller hosts the measured numbers are still recorded, with the gate
marked skipped in the JSON — a 1-core container cannot honestly show
parallel wall-clock wins.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import MGDiffNet, PoissonProblem2D
from repro.serve import default_workers, make_executor, tiled_predict

try:
    from .common import bench_cli, report, write_bench_json
except ImportError:  # pragma: no cover - script mode
    from common import bench_cli, report, write_bench_json

RESOLUTION = 256          # >= 256^2 grid (acceptance floor)
TILE = 64
BASE_FILTERS = 8
DEPTH = 2
WORKERS = 4
REPEATS = 3
TOL = 1e-5
MIN_SPEEDUP = 1.5


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, np.ndarray]:
    fn()                                   # warm-up (pools, plan caches)
    best, out = np.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _run(resolution: int = RESOLUTION, tile: int = TILE,
         workers: int = WORKERS, repeats: int = REPEATS) -> dict:
    problem = PoissonProblem2D(resolution)
    model = MGDiffNet(ndim=2, base_filters=BASE_FILTERS, depth=DEPTH, rng=42)
    omega = np.random.default_rng(0).uniform(-3.0, 3.0, problem.field.m)

    t_serial, ref = _best_of(
        lambda: tiled_predict(model, problem, omega, tile=tile), repeats)
    rows = [{"mode": "serial", "workers": 1, "seconds": t_serial,
             "speedup": 1.0, "divergence": 0.0}]
    for kind in ("thread", "process"):
        with make_executor(kind, workers) as ex:
            t, out = _best_of(
                lambda: tiled_predict(model, problem, omega, tile=tile,
                                      executor=ex), repeats)
        rows.append({"mode": kind, "workers": workers, "seconds": t,
                     "speedup": t_serial / t,
                     "divergence": float(np.abs(out - ref).max())})

    n_tiles = (resolution // tile) ** 2
    return {"resolution": resolution, "tile": tile, "n_tiles": n_tiles,
            "base_filters": BASE_FILTERS, "depth": DEPTH,
            "workers": workers, "cpus": default_workers(), "rows": rows}


def _report(result: dict) -> None:
    report("tile_parallel",
           ["mode", "workers", "seconds", "speedup", "divergence"],
           [[r["mode"], r["workers"], round(r["seconds"], 4),
             round(r["speedup"], 2), f"{r['divergence']:.1e}"]
            for r in result["rows"]])


def _gate(result: dict) -> int:
    """Exactness always; speedup when the host has the cores for it."""
    status = 0
    for r in result["rows"]:
        if r["divergence"] > TOL:
            print(f"FAIL: {r['mode']} stitched field diverges from "
                  f"sequential by {r['divergence']:.2e} > {TOL}")
            status = 1
    process = next(r for r in result["rows"] if r["mode"] == "process")
    if result["cpus"] >= result["workers"]:
        result["speedup_gate"] = "enforced"
        if process["speedup"] < MIN_SPEEDUP:
            print(f"FAIL: process pool speedup {process['speedup']:.2f}x "
                  f"< {MIN_SPEEDUP}x at {result['workers']} workers "
                  f"({result['cpus']} CPUs)")
            status = 1
    else:
        result["speedup_gate"] = (
            f"skipped: host has {result['cpus']} CPU(s) < "
            f"{result['workers']} workers")
        print(f"speedup gate skipped ({result['cpus']} CPU(s) available); "
              f"measured process speedup {process['speedup']:.2f}x")
    return status


if __name__ == "__main__":
    def extra(p):
        p.add_argument("--resolution", type=int, default=RESOLUTION)
        p.add_argument("--tile", type=int, default=TILE)
        p.add_argument("--workers", type=int, default=WORKERS)
        p.add_argument("--repeats", type=int, default=REPEATS)
        p.add_argument("--json", default=None, metavar="PATH",
                       help="also write a JSON artifact (used by CI)")

    args = bench_cli("bench_tile_parallel", extra_args=extra)
    result = _run(args.resolution, args.tile, args.workers, args.repeats)
    _report(result)
    status = _gate(result)
    if args.json:
        write_bench_json(args.json, "tile_parallel", result,
                         gate="pass" if status == 0 else "fail")
        print(f"wrote {args.json}")
    sys.exit(status)
