"""TAB1 — multigrid strategy comparison (paper Table 1).

For each strategy (V, W, F, Half-V) and level count, train from the same
initialization and compare against full training at the finest resolution
(the paper's 'Base'): Base/MG time, Base/MG loss, speedup.

All runs share one stopping rule (early stopping, patience 6, 0.3%
relative improvement) and one epoch cap, exactly like the paper's
protocol.  Downscaled sizes: 2D 64^2 (paper: 128/256/512^2) and 3D 16^3
(paper: 128^3).

Paper claims checked in shape:
* every strategy converges near the Base loss;
* multigrid training beats the Base wall-clock at the larger resolution;
* the speedup grows with resolution (paper: 1.56x at 128^2 up to
  2.8x at 256^2 for the V cycle; marginal or < 1 at the smallest sizes).
"""

from __future__ import annotations

import pytest

from repro import MGTrainConfig, MultigridTrainer, PoissonProblem2D, PoissonProblem3D

try:
    from .common import bench_cli, report, small_model_2d, small_model_3d
except ImportError:
    from common import bench_cli, report, small_model_2d, small_model_3d

CASES_2D = [
    ("v", 2), ("v", 3),
    ("half_v", 2), ("half_v", 3),
    ("w", 3),
    ("f", 3),
]

HEADER = ["resolution", "strategy", "levels", "base_time_s", "mg_time_s",
          "base_loss", "mg_loss", "speedup"]


def _config_2d() -> MGTrainConfig:
    return MGTrainConfig(batch_size=8, lr=3e-3, restriction_epochs=3,
                         max_epochs_per_level=120, patience=6,
                         min_delta=3e-3)


def _run_2d(resolution: int, cases) -> list[list]:
    problem = PoissonProblem2D(resolution=resolution)
    dataset = problem.make_dataset(16)
    config = _config_2d()

    base_tr = MultigridTrainer(small_model_2d(), problem, dataset,
                               strategy="half_v", levels=2, config=config)
    base = base_tr.train_baseline()

    rows = []
    for strategy, levels in cases:
        tr = MultigridTrainer(small_model_2d(), problem, dataset,
                              strategy=strategy, levels=levels, config=config)
        res = tr.train()
        rows.append([f"{resolution}x{resolution}", strategy, levels,
                     round(base.wall_time, 2), round(res.total_time, 2),
                     round(base.final_loss, 5), round(res.final_loss, 5),
                     round(base.wall_time / res.total_time, 2)])
    return rows


def _run_3d(resolution: int = 16) -> list[list]:
    problem = PoissonProblem3D(resolution=resolution)
    dataset = problem.make_dataset(8)
    config = MGTrainConfig(batch_size=4, lr=3e-3, restriction_epochs=2,
                           max_epochs_per_level=60, patience=6,
                           min_delta=3e-3)

    base_tr = MultigridTrainer(small_model_3d(depth=2), problem, dataset,
                               strategy="half_v", levels=2, config=config)
    base = base_tr.train_baseline()
    tr = MultigridTrainer(small_model_3d(depth=2), problem, dataset,
                          strategy="half_v", levels=2, config=config)
    res = tr.train()
    return [[f"{resolution}^3", "half_v", 2,
             round(base.wall_time, 2), round(res.total_time, 2),
             round(base.final_loss, 5), round(res.final_loss, 5),
             round(base.wall_time / res.total_time, 2)]]


def test_table1_2d(benchmark):
    rows = benchmark.pedantic(_run_2d, args=(64, CASES_2D),
                              rounds=1, iterations=1)
    report("table1_strategies_2d", HEADER, rows)
    base_loss = rows[0][5]
    for row in rows:
        # 'all the strategies ... converge around the similar loss value
        # compared to the Base Loss' (here MG usually beats the capped
        # baseline since coarse pretraining accelerates convergence).
        assert row[6] < base_loss * 1.5 + 0.5, row
    # Multigrid beats full fine-resolution training in wall-clock.
    half_v = {r[2]: r[7] for r in rows if r[1] == "half_v"}
    assert max(half_v.values()) > 1.1


def test_table1_speedup_grows_with_resolution(benchmark):
    """Paper: 'The speedup increases with the increase in resolution for
    each strategy' — compare Half-V at 32^2 vs 64^2."""
    def run():
        small = _run_2d(32, [("half_v", 3)])
        large = _run_2d(64, [("half_v", 3)])
        return small + large

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("table1_resolution_trend", HEADER, rows)
    speedup_small, speedup_large = rows[0][7], rows[1][7]
    assert speedup_large > speedup_small


def test_table1_3d(benchmark):
    rows = benchmark.pedantic(_run_3d, rounds=1, iterations=1)
    report("table1_strategies_3d", HEADER, rows)
    row = rows[0]
    # Loss parity with the Base (paper: identical at 0.04 / 0.04).
    assert row[6] < row[5] * 1.5 + 0.5
    # Multigrid is at least competitive at this micro scale; the paper's
    # 6x emerges at 128^3 where fine epochs dominate absolutely.
    assert row[7] > 0.8


if __name__ == "__main__":
    bench_cli("bench_table1_strategies")
    report("table1_strategies_2d", HEADER, _run_2d(64, CASES_2D))
    report("table1_strategies_3d", HEADER, _run_3d())
