"""SUBSTRATE — geometric multigrid solver cycles (paper Sec. 2.3 / Fig. 3).

The numerical-linear-algebra machinery that inspires MGDiffNet's training
schedule: V / W / F cycles of the classic GMG solver on the
variable-coefficient Poisson problem, plus FMG (the solver-level analogue
of Half-V training) and GMG-preconditioned CG.

Shape checks (textbook multigrid facts the paper's Sec. 2.3 recounts):
* iteration counts independent of resolution;
* W/F converge in no more cycles than V;
* FMG reaches discretization-level accuracy with few fine-grid cycles;
* MG-preconditioned CG crushes plain CG.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.data import LogPermeabilityField
from repro.fem import (UniformGrid, GeometricMultigrid, assemble_stiffness,
                       canonical_bc, conjugate_gradient, gmg_preconditioner)
from repro.multigrid import full_multigrid_solve

try:
    from .common import bench_cli, report
except ImportError:
    from common import bench_cli, report

OMEGA = np.array([0.3105, 1.5386, 0.0932, -1.2442])
FIELD = LogPermeabilityField(2)


def _problem(res):
    grid = UniformGrid(2, res)
    return grid, FIELD.evaluate(OMEGA, grid), canonical_bc(grid)


def _run_cycles():
    rows = []
    for res in (33, 65, 129):
        grid, nu, bc = _problem(res)
        for cycle in ("v", "w", "f"):
            gmg = GeometricMultigrid(grid, nu, bc, coarse_size=128)
            t0 = time.perf_counter()
            gmg.solve(tol=1e-9, cycle=cycle)
            dt = time.perf_counter() - t0
            rows.append([res - 1, cycle, gmg.num_levels,
                         gmg.last_report.iterations,
                         round(dt * 1e3, 1)])
    return rows


def test_gmg_cycle_comparison(benchmark):
    rows = benchmark.pedantic(_run_cycles, rounds=1, iterations=1)
    report("gmg_cycles", ["elements_per_dim", "cycle", "levels",
                          "iterations", "time_ms"], rows)
    by = {(r[0], r[1]): r[3] for r in rows}
    # Resolution independence per cycle type.
    for cycle in ("v", "w", "f"):
        iters = [by[(n, cycle)] for n in (32, 64, 128)]
        assert max(iters) - min(iters) <= 3
        assert max(iters) <= 15
    # W and F converge in no more cycles than V.
    for n in (32, 64, 128):
        assert by[(n, "w")] <= by[(n, "v")]
        assert by[(n, "f")] <= by[(n, "v")]


def test_fmg_fine_cycle_counts(benchmark):
    def run():
        grid, nu, bc = _problem(65)
        _, res = full_multigrid_solve(grid, nu, bc, levels=4, tol=1e-9)
        gmg = GeometricMultigrid(grid, nu, bc)
        gmg.solve(tol=1e-9)
        return res, gmg.last_report.iterations

    res, cold_iters = benchmark.pedantic(run, rounds=1, iterations=1)
    report("gmg_fmg", ["level_resolution", "cycles"],
           [[r, c] for r, c in zip(res.resolutions, res.cycles_per_level)]
           + [["cold_start_finest", cold_iters]])
    assert res.cycles_per_level[-1] <= cold_iters


def test_mg_preconditioned_cg(benchmark):
    def run():
        grid, nu, bc = _problem(65)
        k = assemble_stiffness(grid, nu)
        interior = ~bc.mask.ravel()
        k_ii = k[interior][:, interior].tocsr()
        b = -(k @ bc.lift().ravel())[interior]
        _, plain = conjugate_gradient(k_ii, b, tol=1e-10)
        gmg = GeometricMultigrid(grid, nu, bc, coarse_size=128)
        _, mgcg = conjugate_gradient(k_ii, b, tol=1e-10,
                                     preconditioner=gmg_preconditioner(gmg))
        return plain.iterations, mgcg.iterations

    plain_iters, mg_iters = benchmark.pedantic(run, rounds=1, iterations=1)
    report("gmg_preconditioned_cg", ["solver", "iterations"],
           [["plain CG", plain_iters], ["MG-preconditioned CG", mg_iters]])
    assert mg_iters < plain_iters / 4
    assert mg_iters <= 15


if __name__ == "__main__":
    bench_cli("bench_gmg_substrate")
    report("gmg_cycles", ["elements_per_dim", "cycle", "levels",
                          "iterations", "time_ms"], _run_cycles())
