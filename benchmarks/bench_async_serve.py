"""ASYNC SERVE — priority lanes under mixed load, async vs sync throughput.

The async front-end's value claim (ROADMAP "Async/streaming front-end")
is twofold: (1) under a saturated mixed-priority load, high-priority
requests jump the queue, so their tail latency stays a small multiple of
one batch time while bulk traffic absorbs the queueing delay; (2) the
scheduling layer costs nothing when it isn't discriminating — overall
QPS through the asyncio facade stays within 10% of the plain sync
worker-thread server on the identical workload.

Both claims are gated: the benchmark exits nonzero if the high-priority
p99 is not strictly below the low-priority p99, or if async QPS falls
below ``MIN_QPS_RATIO`` x sync QPS.  ``--json`` writes
``BENCH_async_serve.json`` for CI (uploaded by the async-serve-smoke
job).
"""

from __future__ import annotations

import asyncio
import sys
import time

import numpy as np

from repro import MGDiffNet, PoissonProblem2D
from repro.data.sobol import sample_omega
from repro.serve import (
    AsyncPredictionServer, ModelRegistry, PredictionServer, ServerConfig,
)

try:
    from .common import bench_cli, report, write_bench_json
except ImportError:  # pragma: no cover - script mode
    from common import bench_cli, report, write_bench_json

RESOLUTION = 16
BASE_FILTERS = 8
DEPTH = 3          # deep enough that one fused forward takes real time,
                   # so a saturated queue is where latency accrues
N_REQUESTS = 96
HIGH_EVERY = 4     # every 4th request is high-priority (25% of load)
HIGH_PRIORITY = 5
MAX_BATCH = 8
MAX_WAIT_MS = 2.0
MIN_QPS_RATIO = 0.9
ROUNDS = 3         # interleaved sync/async rounds; per-mode best QPS
                   # (single runs are too noisy on shared CI hosts)


def _make_registry() -> ModelRegistry:
    problem = PoissonProblem2D(RESOLUTION)
    model = MGDiffNet(ndim=2, base_filters=BASE_FILTERS, depth=DEPTH, rng=42)
    registry = ModelRegistry()
    registry.register_model("bench", model, problem)
    return registry


def _server(registry: ModelRegistry) -> PredictionServer:
    # Cache off so every request computes; one worker so the queue is
    # the contended resource the scheduler disciplines.
    return PredictionServer(registry, ServerConfig(
        max_batch=MAX_BATCH, max_wait_ms=MAX_WAIT_MS, workers=1,
        cache_bytes=0))


def _lanes(n_requests: int) -> list[tuple[str, int]]:
    """(lane, priority) per request: every HIGH_EVERY-th is high."""
    return [("high", HIGH_PRIORITY) if i % HIGH_EVERY == 0 else ("low", 0)
            for i in range(n_requests)]


def _measure_async(registry: ModelRegistry, omegas: np.ndarray,
                   latencies: dict[str, list[float]]) -> dict:
    """Mixed-priority load through the asyncio facade; per-lane latency
    appended into ``latencies`` (accumulated across rounds)."""
    lanes = _lanes(len(omegas))

    async def client(aserver, lane: str, priority: int,
                     omega: np.ndarray) -> None:
        t0 = time.perf_counter()
        await aserver.predict("bench", omega, priority=priority)
        latencies[lane].append(time.perf_counter() - t0)

    async def run() -> float:
        server = _server(registry)
        async with AsyncPredictionServer(server) as aserver:
            t0 = time.perf_counter()
            await asyncio.gather(*[
                client(aserver, lane, priority, w)
                for (lane, priority), w in zip(lanes, omegas)])
            return time.perf_counter() - t0

    wall = asyncio.run(run())
    return {"mode": "async", "qps": len(omegas) / wall, "wall_s": wall}


def _measure_sync(registry: ModelRegistry, omegas: np.ndarray) -> dict:
    """The PR 3 baseline: plain submit/result, no priorities."""
    server = _server(registry)
    t0 = time.perf_counter()
    with server:
        futures = [server.submit("bench", w) for w in omegas]
        for f in futures:
            f.result()
        wall = time.perf_counter() - t0
    s = server.stats
    return {"mode": "sync", "qps": len(omegas) / wall, "wall_s": wall,
            "p50_ms": s.p50 * 1e3, "p99_ms": s.p99 * 1e3}


def _run(n_requests: int = N_REQUESTS, rounds: int = ROUNDS) -> dict:
    registry = _make_registry()
    omegas = sample_omega(n_requests, 4)
    # One inline forward warms conv-plan and pool caches for both runs.
    PredictionServer(registry, ServerConfig(cache_bytes=0)).predict(
        "bench", omegas[0])
    # Interleave the modes round by round and compare per-mode *bests*:
    # on a shared host a single measurement is hostage to whatever else
    # ran in that instant, and the claim under test (scheduling adds no
    # throughput cost) is about the mechanism, not the noise floor.
    latencies: dict[str, list[float]] = {"high": [], "low": []}
    sync_rounds, async_rounds = [], []
    for _ in range(max(1, rounds)):
        sync_rounds.append(_measure_sync(registry, omegas))
        async_rounds.append(_measure_async(registry, omegas, latencies))
    sync = max(sync_rounds, key=lambda r: r["qps"])
    async_row = dict(max(async_rounds, key=lambda r: r["qps"]))
    for lane in ("high", "low"):
        lat = np.asarray(latencies[lane])
        async_row[f"{lane}_n"] = int(lat.size)
        async_row[f"{lane}_p50_ms"] = float(np.percentile(lat, 50)) * 1e3
        async_row[f"{lane}_p99_ms"] = float(np.percentile(lat, 99)) * 1e3
    return {
        "resolution": RESOLUTION, "base_filters": BASE_FILTERS,
        "depth": DEPTH, "n_requests": n_requests,
        "high_fraction": 1.0 / HIGH_EVERY, "max_batch": MAX_BATCH,
        "rounds": rounds, "sync": sync, "async": async_row,
        "sync_qps_rounds": [r["qps"] for r in sync_rounds],
        "async_qps_rounds": [r["qps"] for r in async_rounds],
        "qps_ratio": async_row["qps"] / sync["qps"],
    }


def _report(result: dict) -> None:
    a, s = result["async"], result["sync"]
    report("async_serve",
           ["mode", "lane", "n", "qps", "p50_ms", "p99_ms"],
           [["sync", "all", result["n_requests"], round(s["qps"], 1),
             round(s["p50_ms"], 2), round(s["p99_ms"], 2)],
            ["async", "high", a["high_n"], round(a["qps"], 1),
             round(a["high_p50_ms"], 2), round(a["high_p99_ms"], 2)],
            ["async", "low", a["low_n"], round(a["qps"], 1),
             round(a["low_p50_ms"], 2), round(a["low_p99_ms"], 2)]])


def _gate(result: dict) -> int:
    """Exit status: 0 when both latency and throughput gates hold."""
    a = result["async"]
    status = 0
    if a["high_p99_ms"] < a["low_p99_ms"]:
        result["priority_gate"] = "ok"
        print(f"priority gate ok: high p99 {a['high_p99_ms']:.1f} ms < "
              f"low p99 {a['low_p99_ms']:.1f} ms")
    else:
        result["priority_gate"] = "failed"
        print(f"FAIL: high-priority p99 {a['high_p99_ms']:.1f} ms not "
              f"below low-priority p99 {a['low_p99_ms']:.1f} ms")
        status = 1
    if result["qps_ratio"] >= MIN_QPS_RATIO:
        result["qps_gate"] = "ok"
        print(f"throughput gate ok: async QPS = "
              f"{result['qps_ratio']:.2f}x sync (>= {MIN_QPS_RATIO})")
    else:
        result["qps_gate"] = "failed"
        print(f"FAIL: async QPS only {result['qps_ratio']:.2f}x sync "
              f"(< {MIN_QPS_RATIO})")
        status = 1
    return status


def test_async_serve(benchmark):
    # Downscaled for wall time; the shape under test is that priority
    # lanes separate under saturation without a throughput cliff.  The
    # hard MIN_QPS_RATIO gate runs at full size in __main__ (CI's
    # async-serve-smoke job); at 48 requests the ratio is too noisy for
    # that bound, so this variant only rules out a cliff.
    result = benchmark.pedantic(lambda: _run(n_requests=48, rounds=2),
                                rounds=1, iterations=1)
    _report(result)
    a = result["async"]
    assert a["high_p99_ms"] < a["low_p99_ms"], (
        f"high p99 {a['high_p99_ms']:.1f} ms not below "
        f"low p99 {a['low_p99_ms']:.1f} ms")
    assert result["qps_ratio"] >= 0.7


if __name__ == "__main__":
    args = bench_cli(
        "bench_async_serve",
        extra_args=lambda p: p.add_argument(
            "--json", default=None, metavar="PATH",
            help="also write a JSON artifact (used by CI)"))
    result = _run()
    _report(result)
    status = _gate(result)
    if args.json:
        write_bench_json(args.json, "async_serve", result,
                         gate="pass" if status == 0 else "fail")
        print(f"wrote {args.json}")
    sys.exit(status)
