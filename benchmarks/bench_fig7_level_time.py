"""FIG7 — fraction of training time spent at each level (paper Fig. 7).

The paper's pie charts show how V / W / F / Half-V distribute wall time
over the hierarchy.  Shape checks: every strategy spends a nonzero share
at each level, and the Half-V cycle — which never trains at fine levels
during the descent — concentrates *less* of its time at intermediate
levels than W/F (which revisit them repeatedly).
"""

from __future__ import annotations

import pytest

from repro import MultigridTrainer, PoissonProblem2D
from repro.multigrid import STRATEGIES

try:
    from .common import bench_cli, bench_config, report, small_model_2d
except ImportError:
    from common import bench_cli, bench_config, report, small_model_2d

LEVELS = 3


def _run(resolution: int = 32) -> list[list]:
    problem = PoissonProblem2D(resolution=resolution)
    dataset = problem.make_dataset(8)
    config = bench_config(max_epochs=20)

    rows = []
    for strategy in STRATEGIES:
        tr = MultigridTrainer(small_model_2d(), problem, dataset,
                              strategy=strategy, levels=LEVELS, config=config)
        res = tr.train()
        frac = res.time_fraction_per_level()
        rows.append([strategy] +
                    [round(frac.get(l, 0.0), 3) for l in range(1, LEVELS + 1)])
    return rows


HEADER = ["strategy"] + [f"L{l}_fraction" for l in range(1, LEVELS + 1)]


def test_fig7_time_per_level(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("fig7_level_time", HEADER, rows)
    for row in rows:
        fractions = row[1:]
        # Rows are rounded to 3 decimals, so the sum carries that error.
        assert abs(sum(fractions) - 1.0) < 2e-3
        assert all(f > 0 for f in fractions)
    by_strategy = {row[0]: row[1:] for row in rows}
    # The finest level dominates cost for every strategy (it is the most
    # expensive per epoch), matching the paper's charts.
    for strategy, frac in by_strategy.items():
        assert frac[0] == max(frac), strategy


if __name__ == "__main__":
    bench_cli("bench_fig7_level_time")
    report("fig7_level_time", HEADER, _run())
