"""CONTROL PLANE — read spreading and tenant isolation under load.

The control plane's two SLO levers, measured end to end on a live
fleet:

* **Skew** — one replica of a 2-way replicated key is *hot* (its
  forward is 2x slower, a la a shard sharing its host with a training
  job).  Primary-only routing funnels every read through it; the
  power-of-two-choices balancer reads live queue depths and diverts to
  the cold replica.  Measured: request p99 with and without the
  balancer over the same storm.
* **Tenant mix** — a noisy tenant fires a burst far over its
  token-bucket quota while a polite tenant paces itself within its
  own.  Per-tenant buckets mean the noisy tenant's saturation lands on
  the noisy tenant alone.  Measured: per-tenant admitted/throttled
  counts and fleet conservation.

Gates (exit nonzero on failure):

* **conservation** — ``FleetStats.lost == 0`` in every mode, always;
* **skew** — on hosts with >= 4 CPUs, balanced p99 must beat
  primary-only p99 outright;
* **tenant isolation** — on hosts with >= 4 CPUs, the polite tenant
  is never throttled and every one of its requests is served, while
  the noisy tenant is throttled.  Hosts without the cores record the
  skip reason in the JSON instead (on a 1-core container the queueing
  signal the balancer reads is mostly scheduler noise).

``--json BENCH_control_plane.json`` is uploaded by CI's control-smoke
job and appended to ``benchmarks/results/trajectory.jsonl``.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import MGDiffNet, PoissonProblem2D
from repro.core.inference import predict_batch
from repro.data.sobol import sample_omega
from repro.serve import (
    AdmissionController, FleetConfig, PowerOfTwoBalancer, ServerConfig,
    ShardedFleet, TenantQuota, TenantThrottled,
)
from repro.serve.executor import default_workers

try:
    from .common import bench_cli, report, write_bench_json
except ImportError:  # pragma: no cover - script mode
    from common import bench_cli, report, write_bench_json

RESOLUTION = 16
BASE_FILTERS = 4
DEPTH = 1
SEED = 20260808
TOL = 1e-5
MIN_CPUS = 4          # below this the gates record a skip, not a verdict

# Skew experiment: service times 2:1 (hot primary vs cold replica).
N_READS = 80
HOT_DELAY_S = 0.004
COLD_DELAY_S = 0.002

# Tenant experiment: one bucket per tenant, 40/s with a 20-deep burst.
TENANT_RATE = 40.0
TENANT_BURST = 20.0
NOISY_BURST = 120     # fired flat-out: ~rate-limited hard
POLITE_COUNT = 20
POLITE_SPACING_S = 1.0 / (TENANT_RATE * 0.5)   # half the quota rate


def _make_fleet() -> tuple[ShardedFleet, MGDiffNet, PoissonProblem2D]:
    problem = PoissonProblem2D(RESOLUTION)
    model = MGDiffNet(ndim=2, base_filters=BASE_FILTERS, depth=DEPTH,
                      rng=42)
    fleet = ShardedFleet(FleetConfig(
        shards=2, replicas=2,
        server=ServerConfig(max_batch=8, max_wait_ms=0.5, workers=1,
                            cache_bytes=0)))
    fleet.register_model("m", model, problem)
    return fleet, model, problem


def _slow(server, delay_s: float) -> None:
    forward = server._forward

    def delayed(entry, omegas, resolution):
        time.sleep(delay_s)
        return forward(entry, omegas, resolution)

    server._forward = delayed


def _measure_skew(balanced: bool, n_reads: int) -> dict:
    """One storm against a hot-primary fleet; p99 with/without p2c."""
    fleet, model, problem = _make_fleet()
    primary_id, replica_id = fleet.replicas_for("m")
    by_id = {s.id: s for s in fleet.shards}
    _slow(by_id[primary_id].server, HOT_DELAY_S)
    _slow(by_id[replica_id].server, COLD_DELAY_S)
    if balanced:
        fleet.balancer = PowerOfTwoBalancer(seed=SEED)
    omegas = sample_omega(n_reads, 4)
    with fleet:
        fleet.predict("m", omegas[0], timeout=60)      # warm both paths
        t0 = time.perf_counter()
        futures = [fleet.submit("m", w) for w in omegas]
        fields = [f.result(timeout=120) for f in futures]
        wall = time.perf_counter() - t0
        ref = predict_batch(model, problem, omegas[-1])[0]
        divergence = float(np.abs(fields[-1] - ref).max())
    s = fleet.stats
    return {"mode": "p2c" if balanced else "primary-only",
            "wall_s": wall, "qps": n_reads / wall,
            "p50_ms": s.p50 * 1e3, "p99_ms": s.p99 * 1e3,
            "spreads": s.spreads, "divergence": divergence,
            "lost": s.lost}


def _measure_tenants(noisy_burst: int, polite_count: int) -> dict:
    """Noisy tenant saturates its bucket; polite tenant paces within."""
    fleet, model, problem = _make_fleet()
    fleet.admission = AdmissionController(
        TenantQuota(rate=TENANT_RATE, burst=TENANT_BURST))
    omegas = sample_omega(noisy_burst + polite_count, 4)
    noisy_throttled = 0
    futures = []
    with fleet:
        for w in omegas[:noisy_burst]:                 # flat-out burst
            try:
                futures.append(fleet.submit("m", w, tenant="noisy"))
            except TenantThrottled:
                noisy_throttled += 1
        polite_throttled = 0
        for w in omegas[noisy_burst:]:                 # paced inside quota
            try:
                futures.append(fleet.submit("m", w, tenant="polite"))
            except TenantThrottled:
                polite_throttled += 1
            time.sleep(POLITE_SPACING_S)
        for f in futures:
            f.result(timeout=120)
    tenants = fleet.admission.snapshot()
    s = fleet.stats
    return {"noisy_submitted": noisy_burst,
            "noisy_admitted": tenants["noisy"]["admitted"],
            "noisy_throttled": noisy_throttled,
            "polite_submitted": polite_count,
            "polite_admitted": tenants["polite"]["admitted"],
            "polite_throttled": polite_throttled,
            "served": s.served, "throttled": s.throttled,
            "lost": s.lost}


def _run(n_reads: int = N_READS, noisy_burst: int = NOISY_BURST,
         polite_count: int = POLITE_COUNT) -> dict:
    skew = [_measure_skew(balanced=False, n_reads=n_reads),
            _measure_skew(balanced=True, n_reads=n_reads)]
    tenants = _measure_tenants(noisy_burst, polite_count)
    return {"resolution": RESOLUTION, "base_filters": BASE_FILTERS,
            "depth": DEPTH, "n_reads": n_reads,
            "hot_delay_s": HOT_DELAY_S, "cold_delay_s": COLD_DELAY_S,
            "tenant_rate": TENANT_RATE, "tenant_burst": TENANT_BURST,
            "cpus": default_workers(), "skew": skew, "tenants": tenants}


def _report(result: dict) -> None:
    report("control_plane: 2:1 hot-replica skew",
           ["mode", "qps", "p50_ms", "p99_ms", "spreads", "divergence"],
           [[r["mode"], round(r["qps"], 1), round(r["p50_ms"], 2),
             round(r["p99_ms"], 2), r["spreads"],
             f"{r['divergence']:.1e}"] for r in result["skew"]])
    t = result["tenants"]
    report("control_plane: tenant mix",
           ["tenant", "submitted", "admitted", "throttled"],
           [["noisy", t["noisy_submitted"], t["noisy_admitted"],
             t["noisy_throttled"]],
            ["polite", t["polite_submitted"], t["polite_admitted"],
             t["polite_throttled"]]])


def _gate(result: dict) -> int:
    """Conservation and exactness always; SLO gates when cores allow."""
    status = 0
    for row in result["skew"]:
        if row["divergence"] > TOL:
            print(f"FAIL: {row['mode']} answer diverges from "
                  f"predict_batch by {row['divergence']:.2e} > {TOL}")
            status = 1
        if row["lost"] != 0:
            print(f"FAIL: {row['mode']} fleet lost {row['lost']} "
                  f"requests (conservation violated)")
            status = 1
    if result["tenants"]["lost"] != 0:
        print(f"FAIL: tenant-mix fleet lost {result['tenants']['lost']} "
              f"requests (conservation violated)")
        status = 1

    primary, p2c = result["skew"]
    cpus = result["cpus"]
    if cpus >= MIN_CPUS:
        result["skew_gate"] = "enforced"
        if p2c["p99_ms"] >= primary["p99_ms"]:
            print(f"FAIL: p2c p99 {p2c['p99_ms']:.2f} ms does not beat "
                  f"primary-only p99 {primary['p99_ms']:.2f} ms under "
                  f"2:1 replica skew")
            status = 1
        else:
            print(f"skew gate ok: p2c p99 {p2c['p99_ms']:.2f} ms < "
                  f"primary-only {primary['p99_ms']:.2f} ms")
    else:
        result["skew_gate"] = (
            f"skipped: host has {cpus} CPU(s) < {MIN_CPUS}")
        print(f"skew gate skipped ({cpus} CPU(s) available); measured "
              f"p2c p99 {p2c['p99_ms']:.2f} ms vs primary-only "
              f"{primary['p99_ms']:.2f} ms")

    t = result["tenants"]
    if cpus >= MIN_CPUS:
        result["tenant_gate"] = "enforced"
        if t["polite_throttled"] != 0 \
                or t["polite_admitted"] != t["polite_submitted"]:
            print(f"FAIL: polite tenant throttled "
                  f"{t['polite_throttled']} of {t['polite_submitted']} "
                  f"paced requests — noisy tenant leaked into its quota")
            status = 1
        elif t["noisy_throttled"] == 0:
            print("FAIL: noisy burst was never throttled — the bucket "
                  "is not limiting anything")
            status = 1
        else:
            print(f"tenant gate ok: noisy throttled "
                  f"{t['noisy_throttled']}/{t['noisy_submitted']}, "
                  f"polite 0/{t['polite_submitted']}")
    else:
        result["tenant_gate"] = (
            f"skipped: host has {cpus} CPU(s) < {MIN_CPUS}")
        print(f"tenant gate skipped ({cpus} CPU(s) available); noisy "
              f"throttled {t['noisy_throttled']}/{t['noisy_submitted']}, "
              f"polite {t['polite_throttled']}/{t['polite_submitted']}")
    return status


def test_control_plane(benchmark):
    # Downscaled for wall time: the shape under test is conservation,
    # exactness and per-tenant bucket isolation; the p99 comparison is
    # gated at full size in __main__ (CI control-smoke job).
    result = benchmark.pedantic(
        lambda: _run(n_reads=24, noisy_burst=40, polite_count=5),
        rounds=1, iterations=1)
    _report(result)
    for row in result["skew"]:
        assert row["divergence"] <= TOL
        assert row["lost"] == 0
        assert row["qps"] > 0
    assert result["skew"][1]["spreads"] > 0
    t = result["tenants"]
    assert t["lost"] == 0
    assert t["polite_throttled"] == 0
    assert t["noisy_throttled"] > 0
    assert t["served"] == t["noisy_admitted"] + t["polite_admitted"]


if __name__ == "__main__":
    def extra(p):
        p.add_argument("--reads", type=int, default=N_READS)
        p.add_argument("--noisy-burst", type=int, default=NOISY_BURST)
        p.add_argument("--polite-count", type=int, default=POLITE_COUNT)
        p.add_argument("--json", default=None, metavar="PATH",
                       help="also write a JSON artifact (used by CI)")

    args = bench_cli("bench_control_plane", extra_args=extra)
    result = _run(args.reads, args.noisy_burst, args.polite_count)
    _report(result)
    status = _gate(result)
    if args.json:
        write_bench_json(args.json, "control_plane", result,
                         gate="pass" if status == 0 else "fail")
        print(f"wrote {args.json}")
    sys.exit(status)
