"""SERVE — batched serving throughput vs sequential single-request inference.

The serving subsystem's claim (ROADMAP north star, paper Sec. 4.3) is
that dynamic micro-batching amortizes per-forward overhead: B coalesced
requests in one fused (B, 1, *grid) forward beat B one-at-a-time
forwards.  This benchmark measures QPS and latency percentiles across a
``max_batch`` sweep against the sequential baseline and records the best
batched speedup; ``--json`` writes ``BENCH_serve_throughput.json`` for
CI (uploaded next to the fig2 artifact).

It also owns the telemetry overhead gate (PR 10): full request tracing
plus the metrics registry must cost <= 3% of batched QPS, measured
best-of-repeats tracing-on vs tracing-off on the same workload.  The
gate is enforced on hosts with >= 4 CPUs and recorded as skipped (with
the reason) in the JSON artifact elsewhere, so CI can tell "regressed"
from "could not measure here".
"""

from __future__ import annotations

import sys
import time

from repro import MGDiffNet, PoissonProblem2D
from repro.data.sobol import sample_omega
from repro.serve import (
    ModelRegistry, PredictionServer, ServerConfig, Telemetry,
    default_workers,
)

try:
    from .common import bench_cli, report, write_bench_json
except ImportError:  # pragma: no cover - script mode
    from common import bench_cli, report, write_bench_json

RESOLUTION = 16
BASE_FILTERS = 8
DEPTH = 3          # the paper's U-Net depth: deep enough that per-call
                   # dispatch overhead dominates a single-sample forward
N_REQUESTS = 128
BATCH_SIZES = (1, 2, 4, 8, 16, 32)
MAX_WAIT_MS = 30.0

# Telemetry overhead gate: tracing on vs off, best-of-repeats.
OVERHEAD_BATCH = 8
OVERHEAD_REPEATS = 3
MAX_OVERHEAD = 0.03
MIN_CPUS_FOR_OVERHEAD_GATE = 4


def _make_registry() -> ModelRegistry:
    problem = PoissonProblem2D(RESOLUTION)
    model = MGDiffNet(ndim=2, base_filters=BASE_FILTERS, depth=DEPTH, rng=42)
    registry = ModelRegistry()
    registry.register_model("bench", model, problem)
    return registry


def _measure(registry: ModelRegistry, max_batch: int, n_requests: int,
             sequential: bool = False) -> dict:
    """One throughput run; cache disabled so every request computes."""
    omegas = sample_omega(n_requests, 4)
    server = PredictionServer(registry, ServerConfig(
        max_batch=max_batch, max_wait_ms=MAX_WAIT_MS, workers=1,
        cache_bytes=0))
    server.predict("bench", omegas[0])  # warm planner/pool caches
    t0 = time.perf_counter()
    if sequential:
        for w in omegas:
            server.predict("bench", w)
    else:
        with server:
            futures = [server.submit("bench", w) for w in omegas]
            for f in futures:
                f.result()
    wall = time.perf_counter() - t0
    s = server.stats
    return {"max_batch": max_batch,
            "mode": "sequential" if sequential else "batched",
            "qps": n_requests / wall,
            "p50_ms": s.p50 * 1e3,
            "p99_ms": s.p99 * 1e3,
            "mean_batch": s.mean_batch_size,
            "wall_s": wall}


def _run(n_requests: int = N_REQUESTS,
         batch_sizes: tuple[int, ...] = BATCH_SIZES) -> list[dict]:
    registry = _make_registry()
    rows = [_measure(registry, 1, n_requests, sequential=True)]
    for mb in batch_sizes:
        if mb == 1:
            continue
        rows.append(_measure(registry, mb, n_requests))
    return rows


def _measure_telemetry_overhead(n_requests: int = N_REQUESTS,
                                repeats: int = OVERHEAD_REPEATS) -> dict:
    """Batched QPS with tracing off vs fully on (sample_every=1),
    best-of-``repeats`` each so scheduler noise doesn't masquerade as
    tracing cost."""
    registry = _make_registry()
    omegas = sample_omega(n_requests, 4)

    def run(traced: bool) -> float:
        server = PredictionServer(registry, ServerConfig(
            max_batch=OVERHEAD_BATCH, max_wait_ms=MAX_WAIT_MS, workers=1,
            cache_bytes=0))
        if traced:
            server.enable_telemetry(Telemetry())
        server.predict("bench", omegas[0])  # warm planner/pool caches
        t0 = time.perf_counter()
        with server:
            futures = [server.submit("bench", w) for w in omegas]
            for f in futures:
                f.result()
        wall = time.perf_counter() - t0
        server.close()
        return n_requests / wall

    off_qps = max(run(False) for _ in range(repeats))
    on_qps = max(run(True) for _ in range(repeats))
    return {"off_qps": off_qps, "on_qps": on_qps,
            "overhead": max(0.0, 1.0 - on_qps / off_qps),
            "repeats": repeats, "n_requests": n_requests}


def _overhead_gate(result: dict) -> int:
    """<= 3% tracing overhead when the host has cores to spare."""
    tel = result["telemetry"]
    cpus = result["cpus"]
    if cpus >= MIN_CPUS_FOR_OVERHEAD_GATE:
        result["overhead_gate"] = "enforced"
        if tel["overhead"] > MAX_OVERHEAD:
            print(f"FAIL: telemetry costs {100 * tel['overhead']:.1f}% "
                  f"of batched QPS ({tel['on_qps']:.1f} traced vs "
                  f"{tel['off_qps']:.1f} untraced, > "
                  f"{100 * MAX_OVERHEAD:.0f}%)")
            return 1
        print(f"overhead gate ok: tracing costs "
              f"{100 * tel['overhead']:.1f}% of batched QPS "
              f"(<= {100 * MAX_OVERHEAD:.0f}%)")
    else:
        result["overhead_gate"] = (
            f"skipped: host has {cpus} CPU(s) < "
            f"{MIN_CPUS_FOR_OVERHEAD_GATE}")
        print(f"overhead gate skipped ({cpus} CPU(s) available); "
              f"measured {100 * tel['overhead']:.1f}%")
    return 0


def _rows_for_report(rows: list[dict]) -> list[list]:
    base = rows[0]["qps"]
    return [[r["mode"], r["max_batch"], round(r["qps"], 1),
             round(r["qps"] / base, 2), round(r["mean_batch"], 2),
             round(r["p50_ms"], 2), round(r["p99_ms"], 2)] for r in rows]


def test_serve_throughput(benchmark):
    # Downscaled for tier-1 wall time; the shape under test is that
    # coalescing beats one-at-a-time serving at all.
    rows = benchmark.pedantic(
        lambda: _run(n_requests=48, batch_sizes=(1, 8)),
        rounds=1, iterations=1)
    report("serve_throughput",
           ["mode", "max_batch", "qps", "speedup", "mean_batch",
            "p50_ms", "p99_ms"], _rows_for_report(rows))
    sequential, batched = rows[0], rows[-1]
    assert batched["mean_batch"] > 1.5, "requests were not coalesced"
    assert batched["qps"] > 1.2 * sequential["qps"], (
        f"batched {batched['qps']:.0f} QPS not faster than sequential "
        f"{sequential['qps']:.0f} QPS")


if __name__ == "__main__":
    args = bench_cli(
        "bench_serve_throughput",
        extra_args=lambda p: p.add_argument(
            "--json", default=None, metavar="PATH",
            help="also write the rows as a JSON artifact (used by CI)"))
    rows = _run()
    report("serve_throughput",
           ["mode", "max_batch", "qps", "speedup", "mean_batch",
            "p50_ms", "p99_ms"], _rows_for_report(rows))
    base = rows[0]["qps"]
    best = max(rows[1:], key=lambda r: r["qps"])
    print(f"best batched: max_batch={best['max_batch']} "
          f"{best['qps']:.1f} QPS = {best['qps'] / base:.2f}x sequential")
    result = {
        "resolution": RESOLUTION,
        "base_filters": BASE_FILTERS,
        "depth": DEPTH,
        "n_requests": N_REQUESTS,
        "cpus": default_workers(),
        "sequential_qps": base,
        "best_batched_qps": best["qps"],
        "speedup_best": best["qps"] / base,
        "rows": rows,
        "telemetry": _measure_telemetry_overhead(),
    }
    tel = result["telemetry"]
    print(f"telemetry: {tel['off_qps']:.1f} QPS untraced, "
          f"{tel['on_qps']:.1f} QPS traced "
          f"({100 * tel['overhead']:.1f}% overhead, "
          f"best of {tel['repeats']})")
    status = _overhead_gate(result)
    if args.json:
        write_bench_json(args.json, "serve_throughput", result,
                         gate="pass" if status == 0 else "fail")
        print(f"wrote {args.json}")
    sys.exit(status)
