"""SERVE — batched serving throughput vs sequential single-request inference.

The serving subsystem's claim (ROADMAP north star, paper Sec. 4.3) is
that dynamic micro-batching amortizes per-forward overhead: B coalesced
requests in one fused (B, 1, *grid) forward beat B one-at-a-time
forwards.  This benchmark measures QPS and latency percentiles across a
``max_batch`` sweep against the sequential baseline and records the best
batched speedup; ``--json`` writes ``BENCH_serve_throughput.json`` for
CI (uploaded next to the fig2 artifact).
"""

from __future__ import annotations

import time

from repro import MGDiffNet, PoissonProblem2D
from repro.data.sobol import sample_omega
from repro.serve import ModelRegistry, PredictionServer, ServerConfig

try:
    from .common import bench_cli, report, write_bench_json
except ImportError:  # pragma: no cover - script mode
    from common import bench_cli, report, write_bench_json

RESOLUTION = 16
BASE_FILTERS = 8
DEPTH = 3          # the paper's U-Net depth: deep enough that per-call
                   # dispatch overhead dominates a single-sample forward
N_REQUESTS = 128
BATCH_SIZES = (1, 2, 4, 8, 16, 32)
MAX_WAIT_MS = 30.0


def _make_registry() -> ModelRegistry:
    problem = PoissonProblem2D(RESOLUTION)
    model = MGDiffNet(ndim=2, base_filters=BASE_FILTERS, depth=DEPTH, rng=42)
    registry = ModelRegistry()
    registry.register_model("bench", model, problem)
    return registry


def _measure(registry: ModelRegistry, max_batch: int, n_requests: int,
             sequential: bool = False) -> dict:
    """One throughput run; cache disabled so every request computes."""
    omegas = sample_omega(n_requests, 4)
    server = PredictionServer(registry, ServerConfig(
        max_batch=max_batch, max_wait_ms=MAX_WAIT_MS, workers=1,
        cache_bytes=0))
    server.predict("bench", omegas[0])  # warm planner/pool caches
    t0 = time.perf_counter()
    if sequential:
        for w in omegas:
            server.predict("bench", w)
    else:
        with server:
            futures = [server.submit("bench", w) for w in omegas]
            for f in futures:
                f.result()
    wall = time.perf_counter() - t0
    s = server.stats
    return {"max_batch": max_batch,
            "mode": "sequential" if sequential else "batched",
            "qps": n_requests / wall,
            "p50_ms": s.p50 * 1e3,
            "p99_ms": s.p99 * 1e3,
            "mean_batch": s.mean_batch_size,
            "wall_s": wall}


def _run(n_requests: int = N_REQUESTS,
         batch_sizes: tuple[int, ...] = BATCH_SIZES) -> list[dict]:
    registry = _make_registry()
    rows = [_measure(registry, 1, n_requests, sequential=True)]
    for mb in batch_sizes:
        if mb == 1:
            continue
        rows.append(_measure(registry, mb, n_requests))
    return rows


def _rows_for_report(rows: list[dict]) -> list[list]:
    base = rows[0]["qps"]
    return [[r["mode"], r["max_batch"], round(r["qps"], 1),
             round(r["qps"] / base, 2), round(r["mean_batch"], 2),
             round(r["p50_ms"], 2), round(r["p99_ms"], 2)] for r in rows]


def test_serve_throughput(benchmark):
    # Downscaled for tier-1 wall time; the shape under test is that
    # coalescing beats one-at-a-time serving at all.
    rows = benchmark.pedantic(
        lambda: _run(n_requests=48, batch_sizes=(1, 8)),
        rounds=1, iterations=1)
    report("serve_throughput",
           ["mode", "max_batch", "qps", "speedup", "mean_batch",
            "p50_ms", "p99_ms"], _rows_for_report(rows))
    sequential, batched = rows[0], rows[-1]
    assert batched["mean_batch"] > 1.5, "requests were not coalesced"
    assert batched["qps"] > 1.2 * sequential["qps"], (
        f"batched {batched['qps']:.0f} QPS not faster than sequential "
        f"{sequential['qps']:.0f} QPS")


if __name__ == "__main__":
    args = bench_cli(
        "bench_serve_throughput",
        extra_args=lambda p: p.add_argument(
            "--json", default=None, metavar="PATH",
            help="also write the rows as a JSON artifact (used by CI)"))
    rows = _run()
    report("serve_throughput",
           ["mode", "max_batch", "qps", "speedup", "mean_batch",
            "p50_ms", "p99_ms"], _rows_for_report(rows))
    base = rows[0]["qps"]
    best = max(rows[1:], key=lambda r: r["qps"])
    print(f"best batched: max_batch={best['max_batch']} "
          f"{best['qps']:.1f} QPS = {best['qps'] / base:.2f}x sequential")
    if args.json:
        write_bench_json(args.json, "serve_throughput", {
            "resolution": RESOLUTION,
            "base_filters": BASE_FILTERS,
            "depth": DEPTH,
            "n_requests": N_REQUESTS,
            "sequential_qps": base,
            "best_batched_qps": best["qps"],
            "speedup_best": best["qps"] / base,
            "rows": rows,
        })
        print(f"wrote {args.json}")
