"""TAB2 — architectural adaptation study (paper Table 2).

Compares Half-V multigrid training with and without architectural
adaptation.  Per the paper's protocol, the adapted run's baseline is full
training of the *final* (deeper) architecture: 'the base time and loss
for the case with architectural adaptation accounts for the final network
architecture'.

Paper claims checked in shape:

* adaptation reaches a loss comparable to (paper: better than) the
  non-adapted multigrid run;
* the adapted-vs-deep-baseline speedup exceeds the non-adapted
  speedup (paper: 3.07x vs 1.94x) because the deep baseline pays for
  the extra layers at every epoch while adaptation adds them late;
* the loss spike after inserting random layers recovers within a few
  dozen mini-batches.
"""

from __future__ import annotations

import pytest

from repro import MGTrainConfig, MultigridTrainer, PoissonProblem2D, Trainer

try:
    from .common import bench_cli, report, small_model_2d
except ImportError:
    from common import bench_cli, report, small_model_2d

HEADER = ["strategy", "params_initial", "params_final", "base_time_s",
          "mg_time_s", "base_loss", "mg_loss", "speedup"]

RESOLUTION = 64
LEVELS = 3


def _config() -> MGTrainConfig:
    return MGTrainConfig(batch_size=8, lr=3e-3, restriction_epochs=3,
                         max_epochs_per_level=120, patience=6,
                         min_delta=3e-3)


def _deep_final_model(n_adaptations: int):
    """The architecture the adapted run ends with, built up front."""
    model = small_model_2d()
    for i in range(n_adaptations):
        model.adapt(rng=100 + i)
    return model


def _run() -> list[list]:
    problem = PoissonProblem2D(resolution=RESOLUTION)
    dataset = problem.make_dataset(16)
    config = _config()
    rows = []

    # --- no adaptation: plain Half-V vs plain baseline -----------------
    model = small_model_2d()
    n0 = model.num_weights
    base = MultigridTrainer(small_model_2d(), problem, dataset,
                            strategy="half_v", levels=LEVELS,
                            config=config).train_baseline()
    res = MultigridTrainer(model, problem, dataset, strategy="half_v",
                           levels=LEVELS, config=config).train()
    rows.append(["half_v (no adaptation)", n0, model.num_weights,
                 round(base.wall_time, 2), round(res.total_time, 2),
                 round(base.final_loss, 5), round(res.final_loss, 5),
                 round(base.wall_time / res.total_time, 2)])

    # --- adaptation: Half-V+adapt vs full training of the final net ----
    model = small_model_2d()
    n0 = model.num_weights
    tr = MultigridTrainer(model, problem, dataset, strategy="half_v",
                          levels=LEVELS, config=config, adapt=True,
                          adapt_rng=9)
    res = tr.train()
    n_adapt = model.net.num_adaptations
    deep_base = MultigridTrainer(_deep_final_model(n_adapt), problem,
                                 dataset, strategy="half_v", levels=LEVELS,
                                 config=config).train_baseline()
    rows.append(["half_v + adaptation", n0, model.num_weights,
                 round(deep_base.wall_time, 2), round(res.total_time, 2),
                 round(deep_base.final_loss, 5), round(res.final_loss, 5),
                 round(deep_base.wall_time / res.total_time, 2)])
    return rows


def test_table2_adaptation(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("table2_adaptation", HEADER, rows)
    no_adapt, adapt = rows
    assert adapt[2] > adapt[1]            # parameters were added
    assert no_adapt[2] == no_adapt[1]     # control unchanged
    # Paper: 'a marginal improvement in the loss' from adaptation — the
    # adapted run must match or beat the non-adapted multigrid loss.
    assert adapt[6] <= no_adapt[6] * 1.15
    # And it lands at/below the deep baseline's loss too.
    assert adapt[6] <= adapt[5] * 1.15
    # Wall-clock stays in the same regime as its deep baseline.  (The
    # paper's 3.07x emerges at 512^2, where fine epochs dwarf the
    # post-adaptation relearning cost; at 64^2 relearning dominates —
    # recorded in EXPERIMENTS.md as a known scale effect.)
    assert adapt[7] > 0.5


def test_adaptation_loss_recovers_quickly(benchmark):
    """Paper: 'within 20-30 mini-batches of update, the loss (which is
    expected to rise due to the random weights) drops down'."""
    problem = PoissonProblem2D(resolution=16)
    dataset = problem.make_dataset(8)
    config = _config()

    def run():
        model = small_model_2d()
        trainer = Trainer(model, problem, dataset, config)
        trainer.train_epochs(16, 12)
        loss_before = trainer.evaluate_loss(16)
        model.adapt(rng=3)
        trainer.sync_optimizer()
        loss_after_adapt = trainer.evaluate_loss(16)
        trainer.train_epochs(16, 12)  # 12 epochs x 1 batch = 12 updates
        loss_recovered = trainer.evaluate_loss(16)
        return loss_before, loss_after_adapt, loss_recovered

    before, after, recovered = benchmark.pedantic(run, rounds=1, iterations=1)
    report("table2_adaptation_recovery",
           ["loss_before", "loss_after_adapt", "loss_recovered"],
           [[round(before, 5), round(after, 5), round(recovered, 5)]])
    assert recovered < after          # training recovers the jump
    assert recovered < before * 1.5   # and lands near the pre-adapt level


if __name__ == "__main__":
    bench_cli("bench_table2_adaptation")
    report("table2_adaptation", HEADER, _run())
