"""FLEET SCALING — serving QPS vs shard count (fig10 story for serving).

The paper's scaling figures show distributed *training* throughput
growing with worker count; the fleet extends that claim to *serving*:
consistent-hash sharding spreads the model registry and request load
over N single-worker shards, each with its own process-pool executor,
so serving throughput should scale with shards the way fig10's epoch
time scales with ranks.

Measured here: a fixed mixed-model request storm against fleets of 1, 2
and 4 shards (R=1 so each key has one home and the load partition is
pure).  Each shard runs ``executor='process'`` with one worker — the
fleet's parallelism *is* the shard count.  Every run also replays the
routing hops through ``SimulatedCommunicator`` with a Bridges-2-like
interconnect model, so the JSON reports virtual comm seconds next to
measured wall time — the simulated-fleet cost the ROADMAP's scale-out
story tracks.

Gates (exit nonzero on failure):

* **exactness** — a sampled routed answer matches ``predict_batch`` to
  <= 1e-5 at every shard count;
* **scaling** — on hosts with >= 4 CPUs, 4-shard QPS >= 1.5x 1-shard
  QPS.  Hosts without the cores record the skip reason in the JSON
  instead (a 1-core container cannot honestly show fleet speedup).

``--json BENCH_fleet_scaling.json`` is uploaded by CI's fleet-smoke job.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import MGDiffNet, PoissonProblem2D
from repro.core.inference import predict_batch
from repro.data.sobol import sample_omega
from repro.perf import BRIDGES2_CPU
from repro.serve import FleetConfig, ServerConfig, ShardedFleet
from repro.serve.executor import default_workers

try:
    from .common import bench_cli, report, write_bench_json
except ImportError:  # pragma: no cover - script mode
    from common import bench_cli, report, write_bench_json

RESOLUTION = 16
BASE_FILTERS = 8
DEPTH = 3            # deep enough that one fused forward takes real time
N_MODELS = 8         # routing keys; spread over the ring
N_REQUESTS = 96
MAX_BATCH = 8
SHARD_COUNTS = (1, 2, 4)
ROUNDS = 3           # best-of: shared hosts are noisy
MIN_SPEEDUP = 1.5
TOL = 1e-5


def _time_model(message_bytes: int, world_size: int) -> float:
    """Alpha-beta point-to-point cost on a Bridges-2-like interconnect."""
    return (message_bytes / BRIDGES2_CPU.bandwidth_bytes_per_s
            + BRIDGES2_CPU.latency_s)


def _make_fleet(shards: int) -> tuple[ShardedFleet, MGDiffNet,
                                      PoissonProblem2D]:
    problem = PoissonProblem2D(RESOLUTION)
    model = MGDiffNet(ndim=2, base_filters=BASE_FILTERS, depth=DEPTH, rng=42)
    fleet = ShardedFleet(FleetConfig(
        shards=shards, replicas=1, time_model=_time_model,
        server=ServerConfig(max_batch=MAX_BATCH, max_wait_ms=2.0,
                            workers=1, cache_bytes=0, executor="process")))
    # One set of weights under N names: N routing keys spread over the
    # ring, zero extra training cost.
    for i in range(N_MODELS):
        fleet.register_model(f"m{i}", model, problem)
    return fleet, model, problem


def _measure(shards: int, n_requests: int, rounds: int) -> dict:
    fleet, model, problem = _make_fleet(shards)
    names = [f"m{i}" for i in range(N_MODELS)]
    omegas = sample_omega(n_requests, 4)
    check_idx = n_requests // 2
    best = None
    divergence = 0.0
    with fleet:
        # Warm every shard's process pool and the conv-plan caches.
        for name in names:
            fleet.predict(name, omegas[0], timeout=120)
        for _ in range(max(1, rounds)):
            t0 = time.perf_counter()
            futures = [fleet.submit(names[i % N_MODELS], w)
                       for i, w in enumerate(omegas)]
            fields = [f.result(timeout=300) for f in futures]
            wall = time.perf_counter() - t0
            if best is None or wall < best:
                best = wall
        ref = predict_batch(
            model, problem, omegas[check_idx])[0]
        divergence = float(np.abs(
            fields[check_idx] - ref).max())
    s = fleet.stats
    return {"shards": shards, "wall_s": best,
            "qps": n_requests / best,
            "p50_ms": s.p50 * 1e3, "p99_ms": s.p99 * 1e3,
            "divergence": divergence,
            "virtual_comm_s": s.virtual_comm_seconds,
            "send_calls": s.send_calls, "lost": s.lost}


def _run(n_requests: int = N_REQUESTS, rounds: int = ROUNDS,
         shard_counts=SHARD_COUNTS) -> dict:
    rows = [_measure(s, n_requests, rounds) for s in shard_counts]
    base = rows[0]["qps"]
    for row in rows:
        row["speedup"] = row["qps"] / base
    return {"resolution": RESOLUTION, "base_filters": BASE_FILTERS,
            "depth": DEPTH, "n_models": N_MODELS,
            "n_requests": n_requests, "rounds": rounds,
            "cpus": default_workers(), "rows": rows}


def _report(result: dict) -> None:
    report("fleet_scaling",
           ["shards", "qps", "speedup", "p99_ms", "virtual_comm_ms",
            "divergence"],
           [[r["shards"], round(r["qps"], 1), round(r["speedup"], 2),
             round(r["p99_ms"], 2), round(r["virtual_comm_s"] * 1e3, 3),
             f"{r['divergence']:.1e}"] for r in result["rows"]])


def _gate(result: dict) -> int:
    """Exactness and conservation always; speedup when cores allow."""
    status = 0
    for row in result["rows"]:
        if row["divergence"] > TOL:
            print(f"FAIL: {row['shards']}-shard routed answer diverges "
                  f"from predict_batch by {row['divergence']:.2e} > {TOL}")
            status = 1
        if row["lost"] != 0:
            print(f"FAIL: {row['shards']}-shard fleet lost "
                  f"{row['lost']} requests (conservation violated)")
            status = 1
    top = result["rows"][-1]
    if result["cpus"] >= top["shards"]:
        result["speedup_gate"] = "enforced"
        if top["speedup"] < MIN_SPEEDUP:
            print(f"FAIL: {top['shards']}-shard QPS only "
                  f"{top['speedup']:.2f}x 1-shard (< {MIN_SPEEDUP}x on a "
                  f"{result['cpus']}-CPU host)")
            status = 1
        else:
            print(f"scaling gate ok: {top['shards']} shards = "
                  f"{top['speedup']:.2f}x 1-shard QPS (>= {MIN_SPEEDUP}x)")
    else:
        result["speedup_gate"] = (
            f"skipped: host has {result['cpus']} CPU(s) < "
            f"{top['shards']} shards")
        print(f"scaling gate skipped ({result['cpus']} CPU(s) available); "
              f"measured {top['shards']}-shard speedup "
              f"{top['speedup']:.2f}x")
    return status


def test_fleet_scaling(benchmark):
    # Downscaled for wall time: the shape under test is exact routed
    # answers and a non-degenerate QPS at every fleet size; the hard
    # 1.5x gate runs at full size in __main__ (CI fleet-smoke job).
    result = benchmark.pedantic(
        lambda: _run(n_requests=32, rounds=1, shard_counts=(1, 2)),
        rounds=1, iterations=1)
    _report(result)
    for row in result["rows"]:
        assert row["divergence"] <= TOL
        assert row["lost"] == 0
        assert row["qps"] > 0


if __name__ == "__main__":
    def extra(p):
        p.add_argument("--requests", type=int, default=N_REQUESTS)
        p.add_argument("--rounds", type=int, default=ROUNDS)
        p.add_argument("--json", default=None, metavar="PATH",
                       help="also write a JSON artifact (used by CI)")

    args = bench_cli("bench_fleet_scaling", extra_args=extra)
    result = _run(args.requests, args.rounds)
    _report(result)
    status = _gate(result)
    if args.json:
        write_bench_json(args.json, "fleet_scaling", result,
                         gate="pass" if status == 0 else "fail")
        print(f"wrote {args.json}")
    sys.exit(status)
